//! The bipartite reduction and the greedy objective adapter.
//!
//! Section 2.2 of the paper formulates scheduling as submodular maximization:
//! ground set = slot/processor pairs, allowable subsets = candidate awake
//! intervals (each contributing its slots), utility = matching rank of the
//! slot–job bipartite graph. This module builds that graph once
//! ([`ScheduleReduction`]) and adapts the incremental
//! [`bmatch::MatchingOracle`] to the [`BudgetedObjective`] interface consumed
//! by the Lemma 2.1.2 greedy.

use bmatch::{BipartiteGraph, BipartiteGraphBuilder, GainScratch, MatchingOracle};
use submodular::BudgetedObjective;

use crate::candidates::CandidateInterval;
use crate::model::{Instance, Schedule, SlotRef};

/// The slot–job bipartite graph plus per-candidate slot lists.
///
/// Built once per solve; borrowed by [`ScheduleObjective`].
#[derive(Clone, Debug)]
pub struct ScheduleReduction {
    /// `X` = dense slot ids (`proc · horizon + time`), `Y` = jobs.
    pub graph: BipartiteGraph,
    /// For each candidate interval: the slot ids it contributes that have at
    /// least one adjacent job (degree-0 slots can never change the matching,
    /// so they are omitted from gain evaluation — the interval's *cost* still
    /// covers them).
    pub slot_lists: Vec<Vec<u32>>,
    /// Candidate costs, aligned with `slot_lists`.
    pub costs: Vec<f64>,
}

impl ScheduleReduction {
    /// Builds the reduction for `inst` and the given candidate family.
    pub fn build(inst: &Instance, candidates: &[CandidateInterval]) -> Self {
        let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
        for (jid, job) in inst.jobs.iter().enumerate() {
            for &s in &job.allowed {
                b.add_edge(inst.slot_id(s), jid as u32);
            }
        }
        let graph = b.build();

        let slot_lists = candidates
            .iter()
            .map(|iv| {
                (iv.start..iv.end)
                    .map(|t| inst.slot_id(SlotRef::new(iv.proc, t)))
                    .filter(|&sid| graph.deg_x(sid) > 0)
                    .collect()
            })
            .collect();
        let costs = candidates.iter().map(|iv| iv.cost).collect();

        Self {
            graph,
            slot_lists,
            costs,
        }
    }
}

/// [`BudgetedObjective`] over the matching rank: `F(S)` = maximum (weighted)
/// value of jobs matchable into the union of committed candidate intervals.
pub struct ScheduleObjective<'r> {
    red: &'r ScheduleReduction,
    oracle: MatchingOracle<'r>,
}

impl<'r> ScheduleObjective<'r> {
    /// Cardinality utility (Lemma 2.2.2): every job counts 1.
    pub fn new_cardinality(red: &'r ScheduleReduction) -> Self {
        Self {
            red,
            oracle: MatchingOracle::new_cardinality(&red.graph),
        }
    }

    /// Weighted utility (Lemma 2.3.2): job `j` counts `values[j] > 0`.
    pub fn new_weighted(red: &'r ScheduleReduction, values: Vec<f64>) -> Self {
        Self {
            red,
            oracle: MatchingOracle::new(&red.graph, values),
        }
    }

    /// Read access to the underlying oracle (matching extraction,
    /// Hall-violator certificates).
    pub fn oracle(&self) -> &MatchingOracle<'r> {
        &self.oracle
    }

    /// Extracts the schedule corresponding to the chosen candidate indices
    /// and the oracle's current maximum matching.
    pub fn extract_schedule(
        &self,
        inst: &Instance,
        candidates: &[CandidateInterval],
        chosen: &[usize],
    ) -> Schedule {
        let awake: Vec<CandidateInterval> = chosen.iter().map(|&i| candidates[i]).collect();
        let mut assignments = vec![None; inst.num_jobs()];
        let mut value = 0.0;
        let mut count = 0usize;
        for (slot_id, job) in self.oracle.matching() {
            assignments[job as usize] = Some(inst.slot_ref(slot_id));
            value += inst.jobs[job as usize].value;
            count += 1;
        }
        let total_cost = awake.iter().map(|iv| iv.cost).sum();
        Schedule {
            awake,
            assignments,
            total_cost,
            scheduled_value: value,
            scheduled_count: count,
        }
    }
}

impl BudgetedObjective for ScheduleObjective<'_> {
    type Scratch = GainScratch;

    fn num_subsets(&self) -> usize {
        self.red.slot_lists.len()
    }

    fn cost(&self, i: usize) -> f64 {
        self.red.costs[i]
    }

    fn current(&self) -> f64 {
        self.oracle.total()
    }

    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64 {
        self.oracle.gain_of(&self.red.slot_lists[i], scratch)
    }

    fn commit(&mut self, i: usize) -> f64 {
        self.oracle.commit(&self.red.slot_lists[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::AffineCost;
    use crate::model::{Instance, Job};
    use submodular::{budgeted_greedy, GreedyConfig};

    fn two_job_instance() -> Instance {
        Instance::new(
            1,
            4,
            vec![Job::window(1.0, 0, 0, 2), Job::window(1.0, 0, 2, 4)],
        )
    }

    #[test]
    fn reduction_shapes() {
        let inst = two_job_instance();
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        assert_eq!(red.graph.nx(), 4);
        assert_eq!(red.graph.ny(), 2);
        assert_eq!(red.slot_lists.len(), cands.len());
        assert_eq!(red.costs.len(), cands.len());
    }

    #[test]
    fn degree_zero_slots_filtered() {
        // job only at t=0; interval [0,3) contributes just slot 0 to the list
        let inst = Instance::new(1, 3, vec![Job::window(1.0, 0, 0, 1)]);
        let cands = vec![CandidateInterval {
            proc: 0,
            start: 0,
            end: 3,
            cost: 4.0,
        }];
        let red = ScheduleReduction::build(&inst, &cands);
        assert_eq!(red.slot_lists[0], vec![0]);
    }

    #[test]
    fn greedy_drives_objective_to_full_schedule() {
        let inst = two_job_instance();
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let mut obj = ScheduleObjective::new_cardinality(&red);
        let n = inst.num_jobs() as f64;
        let out = budgeted_greedy(&mut obj, GreedyConfig::lazy(n, 1.0 / (n + 1.0)));
        assert!(out.reached_target);
        assert_eq!(out.utility, 2.0);
        let sched = obj.extract_schedule(&inst, &cands, &out.chosen);
        assert_eq!(sched.scheduled_count, 2);
        assert!(crate::model::validate_schedule(&inst, &sched).is_empty());
    }

    #[test]
    fn weighted_objective_counts_values() {
        let inst = Instance::new(
            1,
            2,
            vec![Job::window(5.0, 0, 0, 1), Job::window(3.0, 0, 1, 2)],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let values = inst.jobs.iter().map(|j| j.value).collect();
        let mut obj = ScheduleObjective::new_weighted(&red, values);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(8.0, 0.01));
        assert!(out.reached_target);
        assert_eq!(out.utility, 8.0);
    }
}
