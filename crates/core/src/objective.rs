//! The bipartite reduction and the greedy objective adapter.
//!
//! Section 2.2 of the paper formulates scheduling as submodular maximization:
//! ground set = slot/processor pairs, allowable subsets = candidate awake
//! intervals (each contributing its slots), utility = matching rank of the
//! slot–job bipartite graph. This module builds that graph once
//! ([`ScheduleReduction`]) and adapts the incremental
//! [`bmatch::MatchingOracle`] to the [`BudgetedObjective`] interface consumed
//! by the Lemma 2.1.2 greedy.
//!
//! # Hot-path layout
//!
//! The reduction is built for the greedy's access pattern, not for
//! readability of the intermediate state:
//!
//! * **Flat CSR slot lists** — per-candidate slot ids live in one row-major
//!   arena (`slot_arena` + `slot_off`), not `Vec<Vec<u32>>`: one allocation,
//!   contiguous iteration, no per-candidate pointer chase.
//! * **Interesting-slot bitset** — slots adjacent to at least one job are
//!   precomputed into a [`SlotSet`] once, so filtering a candidate's slots is
//!   a bit test instead of a CSR degree lookup per (candidate × slot).
//! * **Prefix runs** — enumerated families arrive grouped by (processor,
//!   start) with increasing end, so consecutive candidates' slot lists are
//!   nested prefixes. [`ScheduleReduction::runs`] records those maximal
//!   chains; a full candidate scan then evaluates each chain with **one**
//!   incremental [`bmatch::MatchingOracle::gain_prefixes`] pass (`O(L)` slot
//!   augmentations for `L` nested candidates instead of `O(L²)`), emitting
//!   bit-identical gains.
//! * **Component-memoized gains** — slots are partitioned into connected
//!   components of the slot–job graph. The matching-rank utility decomposes
//!   over components, so a candidate's exact gain can only change when a
//!   commit touches one of *its* components. [`ScheduleObjective`] version-
//!   stamps components on mutation and replays cached gains for untouched
//!   ones — sound, and bit-identical by construction.

use std::sync::atomic::{AtomicU64, Ordering};

use bmatch::{BipartiteGraph, BipartiteGraphBuilder, GainScratch, MatchingOracle};
use submodular::BudgetedObjective;

use crate::bitset::SlotSet;
use crate::candidates::CandidateInterval;
use crate::model::{Instance, Schedule, SlotRef};

/// Distinguishes objectives so a reused scratch never replays memoized gains
/// computed against a different objective.
static OBJECTIVE_TOKENS: AtomicU64 = AtomicU64::new(1);

/// The slot–job bipartite graph plus per-candidate slot lists in flat CSR
/// form (see the [module docs](self) for the layout rationale).
///
/// Built once per solve (or once per [`crate::Solver`], which caches it
/// across goal calls); borrowed by [`ScheduleObjective`].
#[derive(Clone, Debug)]
pub struct ScheduleReduction {
    /// `X` = dense slot ids (`proc · horizon + time`), `Y` = jobs.
    pub graph: BipartiteGraph,
    /// All *interesting* slot ids (degree > 0) in increasing dense order —
    /// the single shared arena every candidate's slot list is a window of.
    /// Degree-0 slots can never change the matching, so they are omitted
    /// from gain evaluation; an interval's *cost* still covers them.
    islots: Vec<u32>,
    /// Per-candidate window `[off, off + len)` into `islots`. Nested
    /// candidates share storage: `[s, e′)` with `e′ > e` has the same `off`
    /// and a larger `len`, so no per-candidate slot copying happens at all.
    slot_win: Vec<(u32, u32)>,
    /// Candidate costs.
    costs: Vec<f64>,
    /// Run index of each candidate.
    run_of: Vec<u32>,
    /// Maximal candidate ranges `[lo, hi)` whose slot lists form nested
    /// prefixes (same processor and start, increasing end).
    runs: Vec<(u32, u32)>,
    /// Row-major arena of per-run connected-component ids, in first-slot
    /// order and deduped — every candidate's component set is a **prefix**
    /// of its run's sequence (its window is a prefix of the run's longest).
    run_comp_arena: Vec<u32>,
    /// CSR offsets into `run_comp_arena`, one per run plus a sentinel.
    run_comp_off: Vec<u32>,
    /// Per-candidate prefix length into its run's component sequence.
    comp_len: Vec<u32>,
    /// Number of distinct connected components.
    num_comps: u32,
    /// Retained union-find / densification buffers for
    /// [`ScheduleReduction::apply_delta`].
    scratch: RebuildScratch,
}

/// Working buffers for the job-state rebuild, retained across deltas so a
/// re-solve reuses the allocations of the previous one.
#[derive(Clone, Debug, Default)]
struct RebuildScratch {
    uf: Vec<u32>,
    comp_of_slot: Vec<u32>,
    dense: Vec<u32>,
    comp_seen: Vec<u32>,
}

impl ScheduleReduction {
    /// Builds the reduction for `inst` and the given candidate family.
    pub fn build(inst: &Instance, candidates: &[CandidateInterval]) -> Self {
        let _span = sched_obs::span!("core.reduction.build_ns");
        // Candidate-dependent state first: costs and the maximal
        // nested-prefix runs over the candidate order. Both survive job
        // deltas untouched — the candidate family is job-independent.
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut run_of = Vec::with_capacity(candidates.len());
        let mut lo = 0usize;
        for i in 1..=candidates.len() {
            let chained = i < candidates.len() && {
                let (a, b) = (&candidates[i - 1], &candidates[i]);
                a.proc == b.proc && a.start == b.start && a.end < b.end
            };
            if !chained {
                for _ in lo..i {
                    run_of.push(runs.len() as u32);
                }
                runs.push((lo as u32, i as u32));
                lo = i;
            }
        }
        let costs = candidates.iter().map(|iv| iv.cost).collect();

        let mut red = Self {
            graph: BipartiteGraphBuilder::new(0, 0).build(),
            islots: Vec::new(),
            slot_win: Vec::new(),
            costs,
            run_of,
            runs,
            run_comp_arena: Vec::new(),
            run_comp_off: Vec::new(),
            comp_len: Vec::new(),
            num_comps: 0,
            scratch: RebuildScratch::default(),
        };
        red.rebuild_job_state(inst, candidates);
        red
    }

    /// Applies a job delta: rebuilds every job-dependent structure (graph,
    /// interesting-slot arena, candidate windows, connected components) for
    /// the new instance **in place**, reusing the retained allocations and
    /// leaving the candidate-dependent rows (`costs`, `runs`, `run_of`)
    /// untouched. Arrivals and expiries are implied by the new instance; the
    /// caller (the warm handle) diffs instances to find what changed.
    ///
    /// The result is field-for-field identical to
    /// `ScheduleReduction::build(inst, candidates)` — both paths run the same
    /// rebuild — so correctness never depends on the delta being small.
    ///
    /// # Panics
    /// Panics (debug) if `candidates` is not the family this reduction was
    /// built with: windows are recomputed against it, and costs/runs are
    /// assumed to still match.
    pub fn apply_delta(&mut self, inst: &Instance, candidates: &[CandidateInterval]) {
        let _span = sched_obs::span!("core.reduction.apply_delta_ns");
        debug_assert_eq!(
            candidates.len(),
            self.costs.len(),
            "apply_delta requires the original candidate family"
        );
        self.rebuild_job_state(inst, candidates);
    }

    /// The shared job-state rebuild behind [`ScheduleReduction::build`] and
    /// [`ScheduleReduction::apply_delta`]: graph, interesting slots,
    /// per-candidate windows, and connected components, written into the
    /// retained buffers.
    fn rebuild_job_state(&mut self, inst: &Instance, candidates: &[CandidateInterval]) {
        let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
        for (jid, job) in inst.jobs.iter().enumerate() {
            for &s in &job.allowed {
                b.add_edge(inst.slot_id(s), jid as u32);
            }
        }
        self.graph = b.build();
        let graph = &self.graph;

        // interesting slots (degree > 0), tested once per dense slot id
        let nx = graph.nx() as usize;
        let mut interesting = SlotSet::new(nx);
        for x in 0..graph.nx() {
            if graph.deg_x(x) > 0 {
                interesting.insert(x);
            }
        }
        self.islots.clear();
        self.islots.extend(interesting.iter());
        let islots = &self.islots;

        // connected components of the slot–job graph, via union-find over
        // each job's adjacent slots
        let uf = &mut self.scratch.uf;
        uf.clear();
        uf.extend(0..graph.nx());
        fn find(uf: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while uf[r as usize] != r {
                r = uf[r as usize];
            }
            let mut c = x;
            while uf[c as usize] != r {
                let next = uf[c as usize];
                uf[c as usize] = r;
                c = next;
            }
            r
        }
        for y in 0..graph.ny() {
            let adj = graph.adj_y(y);
            if let Some(&first) = adj.first() {
                let root = find(uf, first);
                for &x in &adj[1..] {
                    let r = find(uf, x);
                    uf[r as usize] = root;
                }
            }
        }
        // densify component ids over interesting slots
        let comp_of_slot = &mut self.scratch.comp_of_slot;
        comp_of_slot.clear();
        comp_of_slot.resize(nx, u32::MAX);
        let dense = &mut self.scratch.dense;
        dense.clear();
        dense.resize(nx, u32::MAX);
        let mut num_comps = 0u32;
        for &x in islots {
            let root = find(uf, x);
            if dense[root as usize] == u32::MAX {
                dense[root as usize] = num_comps;
                num_comps += 1;
            }
            comp_of_slot[x as usize] = dense[root as usize];
        }
        self.num_comps = num_comps;

        // per-candidate windows into `islots`, walked incrementally per run
        // (ends increase, so the window only ever grows), plus per-run
        // component sequences in first-slot order (epoch-deduped) with each
        // candidate recording its prefix length into the sequence
        self.slot_win.clear();
        self.slot_win.reserve(candidates.len());
        self.comp_len.clear();
        self.comp_len.reserve(candidates.len());
        self.run_comp_arena.clear();
        self.run_comp_off.clear();
        self.run_comp_off.reserve(self.runs.len() + 1);
        self.run_comp_off.push(0);
        let comp_seen = &mut self.scratch.comp_seen;
        comp_seen.clear();
        comp_seen.resize(num_comps as usize, u32::MAX);
        for (run_idx, &(rlo, rhi)) in self.runs.iter().enumerate() {
            let run_base = self.run_comp_arena.len();
            let first = &candidates[rlo as usize];
            let base_id = inst.slot_id(SlotRef::new(first.proc, first.start));
            let off = islots.partition_point(|&s| s < base_id);
            let mut cursor = off;
            for cand in &candidates[rlo as usize..rhi as usize] {
                let end_id = inst.slot_id(SlotRef::new(cand.proc, 0)) + cand.end;
                while cursor < islots.len() && islots[cursor] < end_id {
                    let c = comp_of_slot[islots[cursor] as usize];
                    if comp_seen[c as usize] != run_idx as u32 {
                        comp_seen[c as usize] = run_idx as u32;
                        self.run_comp_arena.push(c);
                    }
                    cursor += 1;
                }
                self.slot_win.push((off as u32, (cursor - off) as u32));
                self.comp_len
                    .push((self.run_comp_arena.len() - run_base) as u32);
            }
            self.run_comp_off.push(self.run_comp_arena.len() as u32);
        }
    }

    /// Number of candidates in the reduction.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.costs.len()
    }

    /// The (job-adjacent) slot ids contributed by candidate `i`.
    #[inline]
    pub fn slots_of(&self, i: usize) -> &[u32] {
        let (off, len) = self.slot_win[i];
        &self.islots[off as usize..(off + len) as usize]
    }

    /// Cost of candidate `i`.
    #[inline]
    pub fn cost_of(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Connected-component ids touched by any candidate of run `r`.
    #[inline]
    fn comps_of_run(&self, r: usize) -> &[u32] {
        &self.run_comp_arena[self.run_comp_off[r] as usize..self.run_comp_off[r + 1] as usize]
    }

    /// Connected-component ids candidate `i`'s slots touch — the length-
    /// `comp_len[i]` prefix of its run's component sequence.
    #[inline]
    fn comps_of(&self, i: usize) -> &[u32] {
        let base = self.run_comp_off[self.run_of[i] as usize] as usize;
        &self.run_comp_arena[base..base + self.comp_len[i] as usize]
    }

    /// Maximal nested-prefix candidate ranges (see the module docs).
    #[inline]
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }
}

/// Per-thread scratch for [`ScheduleObjective`]: overlay matching workspace
/// plus the component-version gain memo.
pub struct ObjectiveScratch {
    gain: GainScratch,
    /// Objective token the memo below was filled against.
    memo_token: u64,
    /// Version at which candidate `i` was last evaluated (0 = never).
    memo_eval: Vec<u64>,
    /// Cached raw gain of candidate `i` (valid iff `memo_eval[i]` covers
    /// the candidate's latest component stamp).
    memo_val: Vec<f64>,
    /// Cumulative-gain buffer for prefix scans.
    cum: Vec<f64>,
    /// Memo telemetry: candidates served from the memo vs. recomputed, as
    /// plain fields so the hot loops pay no atomics. Flushed to the
    /// ambient registry once per solve by `schedule_all`.
    memo_hits: u64,
    memo_misses: u64,
}

impl Default for ObjectiveScratch {
    fn default() -> Self {
        Self {
            gain: GainScratch::new(),
            memo_token: 0,
            memo_eval: Vec::new(),
            memo_val: Vec::new(),
            cum: Vec::new(),
            memo_hits: 0,
            memo_misses: 0,
        }
    }
}

impl ObjectiveScratch {
    /// Lifetime `(hits, misses)` of the gain memo: candidates whose gain
    /// was replayed from the memo vs. recomputed through the oracle.
    pub fn memo_counts(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    fn ensure(&mut self, token: u64, m: usize) {
        if self.memo_token != token || self.memo_val.len() != m {
            self.memo_token = token;
            self.memo_eval.clear();
            self.memo_eval.resize(m, 0);
            self.memo_val.clear();
            self.memo_val.resize(m, 0.0);
        }
    }
}

/// [`BudgetedObjective`] over the matching rank: `F(S)` = maximum (weighted)
/// value of jobs matchable into the union of committed candidate intervals.
pub struct ScheduleObjective<'r> {
    red: &'r ScheduleReduction,
    oracle: MatchingOracle<'r>,
    /// Identity of this objective, for scratch-memo safety.
    token: u64,
    /// Global commit version; starts at 1, bumped on every mutating commit.
    version: u64,
    /// Per-component version of the last mutating commit that touched it.
    comp_version: Vec<u64>,
}

impl<'r> ScheduleObjective<'r> {
    /// Cardinality utility (Lemma 2.2.2): every job counts 1.
    pub fn new_cardinality(red: &'r ScheduleReduction) -> Self {
        Self::with_oracle(red, MatchingOracle::new_cardinality(&red.graph))
    }

    /// Weighted utility (Lemma 2.3.2): job `j` counts `values[j] > 0`.
    pub fn new_weighted(red: &'r ScheduleReduction, values: Vec<f64>) -> Self {
        Self::with_oracle(red, MatchingOracle::new(&red.graph, values))
    }

    fn with_oracle(red: &'r ScheduleReduction, oracle: MatchingOracle<'r>) -> Self {
        Self {
            red,
            oracle,
            token: OBJECTIVE_TOKENS.fetch_add(1, Ordering::Relaxed),
            version: 1,
            comp_version: vec![0; red.num_comps as usize],
        }
    }

    /// Read access to the underlying oracle (matching extraction,
    /// Hall-violator certificates).
    pub fn oracle(&self) -> &MatchingOracle<'r> {
        &self.oracle
    }

    /// Latest version stamped on any component of the whole run `r` — an
    /// upper bound on every member's own stamp.
    #[inline]
    fn stamp_of_run(&self, r: usize) -> u64 {
        self.red
            .comps_of_run(r)
            .iter()
            .map(|&c| self.comp_version[c as usize])
            .max()
            .unwrap_or(0)
    }

    /// Latest version stamped on any of candidate `i`'s own components: a
    /// memo entry evaluated at version `≥` this is still exact.
    #[inline]
    fn stamp_of(&self, i: usize) -> u64 {
        self.red
            .comps_of(i)
            .iter()
            .map(|&c| self.comp_version[c as usize])
            .max()
            .unwrap_or(0)
    }

    /// Re-evaluates every candidate of run `r` with one incremental overlay
    /// pass over the run's longest member and memoizes the results. Batch
    /// refresh pays double: a full scan gets each run in `O(L)` instead of
    /// `O(L²)` slot augmentations, and a single stale lazy-heap entry
    /// refreshes all its run-mates (the likeliest next pops) for the price
    /// of one pass.
    fn refresh_run(&self, r: usize, scratch: &mut ObjectiveScratch) {
        let (lo, hi) = self.red.runs()[r];
        let (lo, hi) = (lo as usize, hi as usize);
        let slots = self.red.slots_of(hi - 1);
        let mut cum = std::mem::take(&mut scratch.cum);
        self.oracle
            .gain_prefixes(slots, &mut scratch.gain, &mut cum);
        for j in lo..hi {
            let len = self.red.slots_of(j).len();
            scratch.memo_val[j] = if len == 0 { 0.0 } else { cum[len - 1] };
            scratch.memo_eval[j] = self.version;
        }
        scratch.cum = cum;
    }

    /// Pre-seeds `scratch`'s gain memo: candidate `i` with `clean[i]` set is
    /// stamped as already evaluated with value `vals[i]`; the rest stay
    /// unevaluated. A subsequent [`BudgetedObjective::scan_gains`] then
    /// replays the seeded values and recomputes only the unseeded ones — the
    /// warm-start path of incremental re-solving.
    ///
    /// Only sound on a *fresh* objective (no commits yet): the seed is
    /// stamped at the initial version, and the caller must guarantee each
    /// seeded value equals what a fresh evaluation against `S = ∅` would
    /// return — the warm handle derives this from its instance diff and
    /// falls back to a cold solve when it cannot.
    pub(crate) fn seed_memo(&self, scratch: &mut ObjectiveScratch, vals: &[f64], clean: &[bool]) {
        let m = self.red.num_candidates();
        debug_assert_eq!(vals.len(), m);
        debug_assert_eq!(clean.len(), m);
        debug_assert_eq!(self.version, 1, "seeding requires a fresh objective");
        scratch.memo_token = self.token;
        scratch.memo_eval.clear();
        scratch.memo_eval.resize(m, 0);
        scratch.memo_val.clear();
        scratch.memo_val.resize(m, 0.0);
        for i in 0..m {
            if clean[i] {
                scratch.memo_eval[i] = self.version;
                scratch.memo_val[i] = vals[i];
            }
        }
    }

    /// Extracts the schedule corresponding to the chosen candidate indices
    /// and the oracle's current maximum matching.
    pub fn extract_schedule(
        &self,
        inst: &Instance,
        candidates: &[CandidateInterval],
        chosen: &[usize],
    ) -> Schedule {
        let awake: Vec<CandidateInterval> = chosen.iter().map(|&i| candidates[i]).collect();
        let mut assignments = vec![None; inst.num_jobs()];
        let mut value = 0.0;
        let mut count = 0usize;
        for (slot_id, job) in self.oracle.matching() {
            assignments[job as usize] = Some(inst.slot_ref(slot_id));
            value += inst.jobs[job as usize].value;
            count += 1;
        }
        let total_cost = awake.iter().map(|iv| iv.cost).sum();
        Schedule {
            awake,
            assignments,
            total_cost,
            scheduled_value: value,
            scheduled_count: count,
        }
    }
}

impl BudgetedObjective for ScheduleObjective<'_> {
    type Scratch = ObjectiveScratch;

    fn num_subsets(&self) -> usize {
        self.red.num_candidates()
    }

    fn cost(&self, i: usize) -> f64 {
        self.red.cost_of(i)
    }

    fn current(&self) -> f64 {
        self.oracle.total()
    }

    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64 {
        scratch.ensure(self.token, self.red.num_candidates());
        if scratch.memo_eval[i] == 0 || scratch.memo_eval[i] < self.stamp_of(i) {
            scratch.memo_misses += 1;
            self.refresh_run(self.red.run_of[i] as usize, scratch);
        } else {
            scratch.memo_hits += 1;
        }
        scratch.memo_val[i]
    }

    fn commit(&mut self, i: usize) -> f64 {
        let before = self.oracle.revision();
        let gain = self.oracle.commit(self.red.slots_of(i));
        let mutated = self.oracle.revision() != before;
        if mutated {
            // the matching mutated: gains of candidates sharing a component
            // may have changed; everyone else's memo stays exact (the
            // matching rank decomposes over components, and zero-mutation
            // growth of S provably never moves any gain — see
            // `MatchingOracle::revision`)
            self.version += 1;
            for &c in self.red.comps_of(i) {
                self.comp_version[c as usize] = self.version;
            }
        }
        if sched_obs::trace::enabled() {
            let comps = self.red.comps_of(i);
            sched_obs::trace::instant(
                "core.commit",
                vec![
                    ("cand", i.into()),
                    ("gain", gain.into()),
                    ("mutated", u64::from(mutated).into()),
                    (
                        "component",
                        comps.first().map_or(-1i64, |&c| i64::from(c)).into(),
                    ),
                    ("components", comps.len().into()),
                ],
            );
        }
        gain
    }

    fn scan_gains(&self, parallel: bool, scratch: &mut Self::Scratch, out: &mut Vec<f64>) {
        let _span = sched_obs::span!("core.objective.scan_gains_ns");
        let m = self.red.num_candidates();
        out.clear();
        out.resize(m, 0.0);
        if parallel {
            use rayon::prelude::*;
            let runs = self.red.runs();
            let chunks: Vec<Vec<f64>> = (0..runs.len())
                .into_par_iter()
                .map_init(ObjectiveScratch::default, |s, r| {
                    s.ensure(self.token, m);
                    self.refresh_run(r, s);
                    let (lo, hi) = (runs[r].0 as usize, runs[r].1 as usize);
                    s.memo_val[lo..hi].to_vec()
                })
                .collect();
            for (&(lo, hi), chunk) in runs.iter().zip(chunks) {
                out[lo as usize..hi as usize].copy_from_slice(&chunk);
            }
        } else {
            scratch.ensure(self.token, m);
            for r in 0..self.red.runs().len() {
                let (lo, hi) = self.red.runs()[r];
                let (lo, hi) = (lo as usize, hi as usize);
                // conservative whole-run fast path: if every member's memo
                // covers even the run-wide stamp, replay without a pass
                let stamp = self.stamp_of_run(r);
                if !(lo..hi).all(|j| scratch.memo_eval[j] != 0 && scratch.memo_eval[j] >= stamp) {
                    scratch.memo_misses += (hi - lo) as u64;
                    self.refresh_run(r, scratch);
                } else {
                    scratch.memo_hits += (hi - lo) as u64;
                }
                out[lo..hi].copy_from_slice(&scratch.memo_val[lo..hi]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::AffineCost;
    use crate::model::{Instance, Job};
    use submodular::{budgeted_greedy, GreedyConfig};

    fn two_job_instance() -> Instance {
        Instance::new(
            1,
            4,
            vec![Job::window(1.0, 0, 0, 2), Job::window(1.0, 0, 2, 4)],
        )
    }

    #[test]
    fn reduction_shapes() {
        let inst = two_job_instance();
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        assert_eq!(red.graph.nx(), 4);
        assert_eq!(red.graph.ny(), 2);
        assert_eq!(red.num_candidates(), cands.len());
        // enumerated families group by start: one run per (proc, start)
        assert_eq!(red.runs().len(), 4);
        assert_eq!(
            red.runs()
                .iter()
                .map(|&(l, h)| (h - l) as usize)
                .sum::<usize>(),
            cands.len()
        );
    }

    #[test]
    fn degree_zero_slots_filtered() {
        // job only at t=0; interval [0,3) contributes just slot 0 to the list
        let inst = Instance::new(1, 3, vec![Job::window(1.0, 0, 0, 1)]);
        let cands = vec![CandidateInterval {
            proc: 0,
            start: 0,
            end: 3,
            cost: 4.0,
        }];
        let red = ScheduleReduction::build(&inst, &cands);
        assert_eq!(red.slots_of(0), &[0]);
    }

    #[test]
    fn scan_gains_matches_individual_gains() {
        let inst = Instance::new(
            2,
            6,
            vec![
                Job::window(1.0, 0, 0, 3),
                Job::window(1.0, 0, 2, 5),
                Job::window(1.0, 1, 1, 4),
                Job::window(1.0, 1, 3, 6),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let mut obj = ScheduleObjective::new_cardinality(&red);
        // also after a few commits, so the overlay starts from a non-empty
        // matching
        for round in 0..3 {
            let mut scanned = Vec::new();
            let mut scratch = ObjectiveScratch::default();
            obj.scan_gains(false, &mut scratch, &mut scanned);
            let mut fresh = ObjectiveScratch::default();
            for (i, &scan) in scanned.iter().enumerate() {
                assert_eq!(
                    scan,
                    obj.gain(i, &mut fresh),
                    "round {round}, candidate {i}"
                );
            }
            let mut par = Vec::new();
            obj.scan_gains(true, &mut ObjectiveScratch::default(), &mut par);
            assert_eq!(par, scanned, "parallel scan diverged at round {round}");
            obj.commit(round * 7 % cands.len());
        }
    }

    #[test]
    fn memo_replays_only_untouched_components() {
        // two processors with disjoint job sets => two components
        let inst = Instance::new(
            2,
            4,
            vec![Job::window(1.0, 0, 0, 2), Job::window(1.0, 1, 2, 4)],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        assert_eq!(red.num_comps, 2);
        let mut obj = ScheduleObjective::new_cardinality(&red);
        let mut scratch = ObjectiveScratch::default();
        let on_p1 = (0..cands.len()).find(|&i| cands[i].proc == 1).unwrap();
        let on_p0 = (0..cands.len()).find(|&i| cands[i].proc == 0).unwrap();
        let run_p0 = red.run_of[on_p0] as usize;
        let run_p1 = red.run_of[on_p1] as usize;
        let g0_before = obj.gain(on_p0, &mut scratch);
        let g1_before = obj.gain(on_p1, &mut scratch);
        // commit on processor 0: processor 1 candidates keep their memo
        obj.commit(on_p0);
        let _ = (run_p0, run_p1);
        assert!(
            scratch.memo_eval[on_p1] >= obj.stamp_of(on_p1),
            "p1 memo valid"
        );
        assert!(
            scratch.memo_eval[on_p0] < obj.stamp_of(on_p0),
            "p0 memo stale"
        );
        assert_eq!(obj.gain(on_p1, &mut scratch), g1_before);
        // and the replayed value matches a fresh evaluation
        let mut fresh = ObjectiveScratch::default();
        assert_eq!(obj.gain(on_p1, &mut fresh), g1_before);
        let _ = (g0_before, g1_before);
    }

    #[test]
    fn scratch_memo_is_not_replayed_across_objectives() {
        let inst = two_job_instance();
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let mut scratch = ObjectiveScratch::default();
        let mut a = ScheduleObjective::new_cardinality(&red);
        let g = a.gain(0, &mut scratch);
        a.commit(0);
        // same scratch against a *fresh* objective: must re-evaluate, not
        // replay a memo stamped by the old objective's versions
        let b = ScheduleObjective::new_cardinality(&red);
        assert_eq!(b.gain(0, &mut scratch), g);
    }

    #[test]
    fn greedy_drives_objective_to_full_schedule() {
        let inst = two_job_instance();
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let mut obj = ScheduleObjective::new_cardinality(&red);
        let n = inst.num_jobs() as f64;
        let out = budgeted_greedy(&mut obj, GreedyConfig::lazy(n, 1.0 / (n + 1.0)));
        assert!(out.reached_target);
        assert_eq!(out.utility, 2.0);
        let sched = obj.extract_schedule(&inst, &cands, &out.chosen);
        assert_eq!(sched.scheduled_count, 2);
        assert!(crate::model::validate_schedule(&inst, &sched).is_empty());
    }

    #[test]
    fn weighted_objective_counts_values() {
        let inst = Instance::new(
            1,
            2,
            vec![Job::window(5.0, 0, 0, 1), Job::window(3.0, 0, 1, 2)],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let red = ScheduleReduction::build(&inst, &cands);
        let values = inst.jobs.iter().map(|j| j.value).collect();
        let mut obj = ScheduleObjective::new_weighted(&red, values);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(8.0, 0.01));
        assert!(out.reached_target);
        assert_eq!(out.utility, 8.0);
    }
}
