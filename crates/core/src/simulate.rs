//! Discrete-time power simulation of a schedule.
//!
//! The optimization side of this crate treats awake-interval costs as opaque
//! oracle values; this module replays a [`Schedule`] slot by slot, producing
//! the per-processor machine-state timeline (sleep / idle-awake / busy), the
//! restart count, utilization statistics, and — for decomposable cost
//! models — a per-slot energy attribution. Examples use it for narration;
//! tests use it as an independent cross-check of schedule accounting.

use serde::{Deserialize, Serialize};

use crate::bitset::SlotSet;
use crate::model::{Instance, Schedule};
use crate::profile::{PowerProfile, SleepChoice};

/// Machine state of one processor in one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotState {
    /// Asleep (not inside any awake interval).
    Sleep,
    /// Awake but not executing a job (the paper's "processor may be idle
    /// during an awake interval").
    Idle,
    /// Awake and executing a job.
    Busy,
}

/// Result of replaying a schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerTrace {
    /// `states[p][t]`: machine state of processor `p` in slot `t`.
    pub states: Vec<Vec<SlotState>>,
    /// Number of awake intervals (= restarts paid) per processor.
    pub restarts: Vec<usize>,
    /// Awake slots per processor.
    pub awake_slots: Vec<usize>,
    /// Busy slots per processor.
    pub busy_slots: Vec<usize>,
    /// Total energy as recorded by the schedule.
    pub total_energy: f64,
}

impl PowerTrace {
    /// Fraction of awake time spent busy, per processor (`None` when a
    /// processor was never awake).
    pub fn utilization(&self, proc: u32) -> Option<f64> {
        let a = self.awake_slots[proc as usize];
        (a > 0).then(|| self.busy_slots[proc as usize] as f64 / a as f64)
    }

    /// Fleet-wide utilization (`None` if nothing was ever awake).
    pub fn fleet_utilization(&self) -> Option<f64> {
        let a: usize = self.awake_slots.iter().sum();
        let b: usize = self.busy_slots.iter().sum();
        (a > 0).then(|| b as f64 / a as f64)
    }

    /// One line per processor: `S` sleep, `.` idle, `#` busy.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (p, row) in self.states.iter().enumerate() {
            out.push_str(&format!("p{p}: "));
            for s in row {
                out.push(match s {
                    SlotState::Sleep => 'S',
                    SlotState::Idle => '.',
                    SlotState::Busy => '#',
                });
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for PowerTrace {
    /// Compact per-processor timeline: maximal runs of each machine state,
    /// run-length encoded (`4S 2B 1I 3S` = 4 sleep, 2 busy, 1 idle, 3 sleep
    /// slots), followed by the restart count and utilization. One line per
    /// processor — the narration format of `power-sched replay --verbose`
    /// and the examples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (p, row) in self.states.iter().enumerate() {
            write!(f, "p{p}:")?;
            let mut run: Option<(SlotState, usize)> = None;
            for &s in row.iter() {
                match &mut run {
                    Some((state, n)) if *state == s => *n += 1,
                    _ => {
                        if let Some((state, n)) = run.take() {
                            write!(f, " {n}{}", state_letter(state))?;
                        }
                        run = Some((s, 1));
                    }
                }
            }
            if let Some((state, n)) = run {
                write!(f, " {n}{}", state_letter(state))?;
            }
            write!(
                f,
                "  ({} restart{}, {} awake, {} busy",
                self.restarts[p],
                if self.restarts[p] == 1 { "" } else { "s" },
                self.awake_slots[p],
                self.busy_slots[p],
            )?;
            match self.utilization(p as u32) {
                Some(u) => writeln!(f, ", {:.0}% utilized)", 100.0 * u)?,
                None => writeln!(f, ")")?,
            }
        }
        Ok(())
    }
}

fn state_letter(s: SlotState) -> char {
    match s {
        SlotState::Sleep => 'S',
        SlotState::Idle => 'I',
        SlotState::Busy => 'B',
    }
}

/// Replays `schedule` against `inst`.
///
/// Overlapping awake intervals on one processor are merged for state
/// purposes (a slot is awake if any chosen interval covers it) but each
/// chosen interval still counts one restart, mirroring how the optimizer
/// pays for intervals.
pub fn simulate(inst: &Instance, schedule: &Schedule) -> PowerTrace {
    let p = inst.num_processors as usize;
    let t = inst.horizon as usize;

    // Merge awake intervals into per-processor slot bitsets first: marking an
    // interval is a handful of masked word stores, and the awake count is a
    // popcount — the per-slot state rows are materialized once at the end.
    let mut awake = vec![SlotSet::new(t); p];
    let mut restarts = vec![0usize; p];
    for iv in &schedule.awake {
        awake[iv.proc as usize].set_range(iv.start, iv.end);
        restarts[iv.proc as usize] += 1;
    }
    let mut busy = vec![SlotSet::new(t); p];
    for asg in schedule.assignments.iter().flatten() {
        busy[asg.proc as usize].insert(asg.time);
    }

    let states: Vec<Vec<SlotState>> = awake
        .iter()
        .zip(&busy)
        .map(|(aw, bz)| {
            let mut row = vec![SlotState::Sleep; t];
            for s in aw.iter() {
                row[s as usize] = SlotState::Idle;
            }
            for s in bz.iter() {
                row[s as usize] = SlotState::Busy;
            }
            row
        })
        .collect();
    // a (structurally invalid) busy slot outside every awake interval still
    // renders as Busy, so the awake count is over the union — exactly the
    // "state != Sleep" count of the per-slot representation
    let awake_slots: Vec<usize> = awake
        .iter_mut()
        .zip(&busy)
        .map(|(aw, bz)| {
            aw.union_with(bz);
            aw.count()
        })
        .collect();
    let busy_slots: Vec<usize> = busy.iter().map(SlotSet::count).collect();

    PowerTrace {
        states,
        restarts,
        awake_slots,
        busy_slots,
        total_energy: schedule.total_cost,
    }
}

/// One inter-run gap and the sleep depth the break-even rule parked it in.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GapChoice {
    /// Processor the gap belongs to.
    pub proc: u32,
    /// First asleep slot (exclusive end of the previous awake run).
    pub start: u32,
    /// One past the last asleep slot (start of the next awake run).
    pub end: u32,
    /// Chosen sleep depth.
    pub choice: SleepChoice,
    /// Energy of bridging the gap at that depth.
    pub cost: f64,
}

/// Deployed-energy accounting of a schedule under per-processor
/// [`PowerProfile`]s — the ladder-aware refinement of the solver's
/// interval-sum cost.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileEnergy {
    /// Per-processor awake draw (`busy_rate ×` merged awake slots).
    pub awake_energy: Vec<f64>,
    /// Per-processor wake costs: the full wake of the first run plus the
    /// break-even gap cost of every inter-run gap.
    pub wake_energy: Vec<f64>,
    /// Every inter-run gap with its chosen sleep depth.
    pub gaps: Vec<GapChoice>,
    /// Total deployed energy. Never exceeds the schedule's interval-sum
    /// `total_cost` when priced by the same fleet: merging overlapping
    /// intervals drops duplicate wakes and every gap costs at most one full
    /// wake.
    pub total: f64,
}

/// Accounts the energy a fleet described by `profiles` actually spends
/// executing `schedule`: awake intervals are merged into maximal runs, each
/// awake slot draws `busy_rate`, the first run on a processor pays the full
/// wake from off, and every inter-run gap is bridged at the break-even sleep
/// depth ([`PowerProfile::best_sleep`]) — the same wake-vs-sleep comparison
/// the solver makes between a spanning candidate and two separate ones,
/// extended down the sleep ladder.
///
/// # Panics
/// Panics if `profiles` does not hold exactly one profile per processor.
pub fn profile_energy(
    inst: &Instance,
    schedule: &Schedule,
    profiles: &[PowerProfile],
) -> ProfileEnergy {
    let p = inst.num_processors as usize;
    assert_eq!(p, profiles.len(), "one profile per processor required");
    let t = inst.horizon as usize;

    let mut awake = vec![SlotSet::new(t); p];
    for iv in &schedule.awake {
        awake[iv.proc as usize].set_range(iv.start, iv.end);
    }

    let mut awake_energy = vec![0.0; p];
    let mut wake_energy = vec![0.0; p];
    let mut gaps = Vec::new();
    for (proc, set) in awake.iter().enumerate() {
        let profile = &profiles[proc];
        awake_energy[proc] = profile.busy_rate * set.count() as f64;
        // maximal awake runs, in time order
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for s in set.iter() {
            match runs.last_mut() {
                Some((_, end)) if *end == s => *end = s + 1,
                _ => runs.push((s, s + 1)),
            }
        }
        // the first run pays the full off→on wake; each later one the
        // break-even cost of the gap that precedes it
        let mut prev_end: Option<u32> = None;
        for &(start, end) in &runs {
            match prev_end {
                None => wake_energy[proc] += profile.wake_cost,
                Some(e) => {
                    let gap = start - e;
                    let cost = profile.gap_cost(gap);
                    wake_energy[proc] += cost;
                    gaps.push(GapChoice {
                        proc: proc as u32,
                        start: e,
                        end: start,
                        choice: profile.best_sleep(gap),
                        cost,
                    });
                }
            }
            prev_end = Some(end);
        }
    }

    let total = awake_energy.iter().sum::<f64>() + wake_energy.iter().sum::<f64>();
    ProfileEnergy {
        awake_energy,
        wake_energy,
        gaps,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::AffineCost;
    use crate::model::{Job, SlotRef, SolveOptions};
    use crate::profile::SleepState;
    use crate::schedule_all::schedule_all;

    fn solved() -> (Instance, Schedule) {
        let inst = Instance::new(
            1,
            5,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(10.0, 1.0), CandidatePolicy::All);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        (inst, s)
    }

    #[test]
    fn states_match_schedule() {
        let (inst, s) = solved();
        let trace = simulate(&inst, &s);
        // one merged interval [0,4): busy at 0 and 3, idle at 1, 2
        assert_eq!(trace.states[0][0], SlotState::Busy);
        assert_eq!(trace.states[0][1], SlotState::Idle);
        assert_eq!(trace.states[0][2], SlotState::Idle);
        assert_eq!(trace.states[0][3], SlotState::Busy);
        assert_eq!(trace.states[0][4], SlotState::Sleep);
        assert_eq!(trace.restarts[0], 1);
        assert_eq!(trace.awake_slots[0], 4);
        assert_eq!(trace.busy_slots[0], 2);
        assert_eq!(trace.utilization(0), Some(0.5));
        assert_eq!(trace.fleet_utilization(), Some(0.5));
        assert_eq!(trace.total_energy, s.total_cost);
    }

    #[test]
    fn render_shape() {
        let (inst, s) = solved();
        let r = simulate(&inst, &s).render();
        assert_eq!(r.trim_end(), "p0: #..#S");
    }

    #[test]
    fn display_run_length_encodes() {
        let (inst, s) = solved();
        let line = simulate(&inst, &s).to_string();
        // busy at 0 and 3, idle between, asleep at 4
        assert_eq!(
            line.trim_end(),
            "p0: 1B 2I 1B 1S  (1 restart, 4 awake, 2 busy, 50% utilized)"
        );

        let empty = simulate(
            &Instance::new(1, 3, vec![]),
            &Schedule {
                awake: vec![],
                assignments: vec![],
                total_cost: 0.0,
                scheduled_value: 0.0,
                scheduled_count: 0,
            },
        );
        assert_eq!(
            empty.to_string().trim_end(),
            "p0: 3S  (0 restarts, 0 awake, 0 busy)"
        );
    }

    #[test]
    fn empty_schedule_all_sleep() {
        let inst = Instance::new(2, 3, vec![]);
        let s = Schedule {
            awake: vec![],
            assignments: vec![],
            total_cost: 0.0,
            scheduled_value: 0.0,
            scheduled_count: 0,
        };
        let trace = simulate(&inst, &s);
        assert!(trace
            .states
            .iter()
            .all(|row| row.iter().all(|&x| x == SlotState::Sleep)));
        assert_eq!(trace.utilization(0), None);
        assert_eq!(trace.fleet_utilization(), None);
    }

    #[test]
    fn profile_energy_applies_break_even_depths() {
        // two runs [0,2) and [8,10) on one processor, gap of 6
        let inst = Instance::new(1, 10, vec![]);
        let profile = crate::profile::PowerProfile::with_ladder(
            10.0,
            1.0,
            vec![SleepState {
                idle_rate: 0.5,
                wake_cost: 2.0,
            }],
        );
        let schedule = Schedule {
            awake: vec![
                crate::candidates::CandidateInterval {
                    proc: 0,
                    start: 0,
                    end: 2,
                    cost: profile.interval_cost(2),
                },
                crate::candidates::CandidateInterval {
                    proc: 0,
                    start: 8,
                    end: 10,
                    cost: profile.interval_cost(2),
                },
            ],
            assignments: vec![],
            total_cost: 2.0 * profile.interval_cost(2),
            scheduled_value: 0.0,
            scheduled_count: 0,
        };
        let e = profile_energy(&inst, &schedule, std::slice::from_ref(&profile));
        // awake draw 4·1; first wake 10; gap of 6 dozes at 0.5·6+2 = 5 < 10
        assert_eq!(e.awake_energy[0], 4.0);
        assert_eq!(e.wake_energy[0], 15.0);
        assert_eq!(e.total, 19.0);
        assert_eq!(
            e.gaps,
            vec![GapChoice {
                proc: 0,
                start: 2,
                end: 8,
                choice: SleepChoice::State(0),
                cost: 5.0,
            }]
        );
        // the refinement never exceeds the solver's interval-sum cost
        assert!(e.total <= schedule.total_cost + 1e-12);
    }

    #[test]
    fn profile_energy_matches_interval_sum_without_ladder() {
        // solved schedules under an affine fleet: deployed energy equals the
        // interval sum whenever chosen intervals are disjoint
        let (inst, s) = solved();
        let fleet = vec![crate::profile::PowerProfile::affine(10.0, 1.0)];
        let e = profile_energy(&inst, &s, &fleet);
        assert!((e.total - s.total_cost).abs() < 1e-9);
        assert!(e.gaps.is_empty());

        // empty schedule: zero everywhere
        let empty = Schedule {
            awake: vec![],
            assignments: vec![],
            total_cost: 0.0,
            scheduled_value: 0.0,
            scheduled_count: 0,
        };
        let e = profile_energy(&inst, &empty, &fleet);
        assert_eq!(e.total, 0.0);
        assert!(e.gaps.is_empty() && e.wake_energy[0] == 0.0);
    }

    #[test]
    fn busy_count_equals_scheduled_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let t = rng.gen_range(4..10u32);
            let p = rng.gen_range(1..3u32);
            let n = rng.gen_range(1..5usize);
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    let proc = rng.gen_range(0..p);
                    let s = rng.gen_range(0..t);
                    let e = rng.gen_range(s + 1..=t);
                    Job::window(1.0, proc, s, e)
                })
                .collect();
            let inst = Instance::new(p, t, jobs);
            let cands =
                enumerate_candidates(&inst, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
            if let Ok(s) = schedule_all(&inst, &cands, &SolveOptions::default()) {
                let trace = simulate(&inst, &s);
                let busy: usize = trace.busy_slots.iter().sum();
                assert_eq!(busy, s.scheduled_count);
                let restarts: usize = trace.restarts.iter().sum();
                assert_eq!(restarts, s.awake.len());
            }
        }
    }
}
