//! Discrete-time power simulation of a schedule.
//!
//! The optimization side of this crate treats awake-interval costs as opaque
//! oracle values; this module replays a [`Schedule`] slot by slot, producing
//! the per-processor machine-state timeline (sleep / idle-awake / busy), the
//! restart count, utilization statistics, and — for decomposable cost
//! models — a per-slot energy attribution. Examples use it for narration;
//! tests use it as an independent cross-check of schedule accounting.

use serde::{Deserialize, Serialize};

use crate::bitset::SlotSet;
use crate::model::{Instance, Schedule};

/// Machine state of one processor in one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotState {
    /// Asleep (not inside any awake interval).
    Sleep,
    /// Awake but not executing a job (the paper's "processor may be idle
    /// during an awake interval").
    Idle,
    /// Awake and executing a job.
    Busy,
}

/// Result of replaying a schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerTrace {
    /// `states[p][t]`: machine state of processor `p` in slot `t`.
    pub states: Vec<Vec<SlotState>>,
    /// Number of awake intervals (= restarts paid) per processor.
    pub restarts: Vec<usize>,
    /// Awake slots per processor.
    pub awake_slots: Vec<usize>,
    /// Busy slots per processor.
    pub busy_slots: Vec<usize>,
    /// Total energy as recorded by the schedule.
    pub total_energy: f64,
}

impl PowerTrace {
    /// Fraction of awake time spent busy, per processor (`None` when a
    /// processor was never awake).
    pub fn utilization(&self, proc: u32) -> Option<f64> {
        let a = self.awake_slots[proc as usize];
        (a > 0).then(|| self.busy_slots[proc as usize] as f64 / a as f64)
    }

    /// Fleet-wide utilization (`None` if nothing was ever awake).
    pub fn fleet_utilization(&self) -> Option<f64> {
        let a: usize = self.awake_slots.iter().sum();
        let b: usize = self.busy_slots.iter().sum();
        (a > 0).then(|| b as f64 / a as f64)
    }

    /// One line per processor: `S` sleep, `.` idle, `#` busy.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (p, row) in self.states.iter().enumerate() {
            out.push_str(&format!("p{p}: "));
            for s in row {
                out.push(match s {
                    SlotState::Sleep => 'S',
                    SlotState::Idle => '.',
                    SlotState::Busy => '#',
                });
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for PowerTrace {
    /// Compact per-processor timeline: maximal runs of each machine state,
    /// run-length encoded (`4S 2B 1I 3S` = 4 sleep, 2 busy, 1 idle, 3 sleep
    /// slots), followed by the restart count and utilization. One line per
    /// processor — the narration format of `power-sched replay --verbose`
    /// and the examples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (p, row) in self.states.iter().enumerate() {
            write!(f, "p{p}:")?;
            let mut run: Option<(SlotState, usize)> = None;
            for &s in row.iter() {
                match &mut run {
                    Some((state, n)) if *state == s => *n += 1,
                    _ => {
                        if let Some((state, n)) = run.take() {
                            write!(f, " {n}{}", state_letter(state))?;
                        }
                        run = Some((s, 1));
                    }
                }
            }
            if let Some((state, n)) = run {
                write!(f, " {n}{}", state_letter(state))?;
            }
            write!(
                f,
                "  ({} restart{}, {} awake, {} busy",
                self.restarts[p],
                if self.restarts[p] == 1 { "" } else { "s" },
                self.awake_slots[p],
                self.busy_slots[p],
            )?;
            match self.utilization(p as u32) {
                Some(u) => writeln!(f, ", {:.0}% utilized)", 100.0 * u)?,
                None => writeln!(f, ")")?,
            }
        }
        Ok(())
    }
}

fn state_letter(s: SlotState) -> char {
    match s {
        SlotState::Sleep => 'S',
        SlotState::Idle => 'I',
        SlotState::Busy => 'B',
    }
}

/// Replays `schedule` against `inst`.
///
/// Overlapping awake intervals on one processor are merged for state
/// purposes (a slot is awake if any chosen interval covers it) but each
/// chosen interval still counts one restart, mirroring how the optimizer
/// pays for intervals.
pub fn simulate(inst: &Instance, schedule: &Schedule) -> PowerTrace {
    let p = inst.num_processors as usize;
    let t = inst.horizon as usize;

    // Merge awake intervals into per-processor slot bitsets first: marking an
    // interval is a handful of masked word stores, and the awake count is a
    // popcount — the per-slot state rows are materialized once at the end.
    let mut awake = vec![SlotSet::new(t); p];
    let mut restarts = vec![0usize; p];
    for iv in &schedule.awake {
        awake[iv.proc as usize].set_range(iv.start, iv.end);
        restarts[iv.proc as usize] += 1;
    }
    let mut busy = vec![SlotSet::new(t); p];
    for asg in schedule.assignments.iter().flatten() {
        busy[asg.proc as usize].insert(asg.time);
    }

    let states: Vec<Vec<SlotState>> = awake
        .iter()
        .zip(&busy)
        .map(|(aw, bz)| {
            let mut row = vec![SlotState::Sleep; t];
            for s in aw.iter() {
                row[s as usize] = SlotState::Idle;
            }
            for s in bz.iter() {
                row[s as usize] = SlotState::Busy;
            }
            row
        })
        .collect();
    // a (structurally invalid) busy slot outside every awake interval still
    // renders as Busy, so the awake count is over the union — exactly the
    // "state != Sleep" count of the per-slot representation
    let awake_slots: Vec<usize> = awake
        .iter_mut()
        .zip(&busy)
        .map(|(aw, bz)| {
            aw.union_with(bz);
            aw.count()
        })
        .collect();
    let busy_slots: Vec<usize> = busy.iter().map(SlotSet::count).collect();

    PowerTrace {
        states,
        restarts,
        awake_slots,
        busy_slots,
        total_energy: schedule.total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::AffineCost;
    use crate::model::{Job, SlotRef, SolveOptions};
    use crate::schedule_all::schedule_all;

    fn solved() -> (Instance, Schedule) {
        let inst = Instance::new(
            1,
            5,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(10.0, 1.0), CandidatePolicy::All);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        (inst, s)
    }

    #[test]
    fn states_match_schedule() {
        let (inst, s) = solved();
        let trace = simulate(&inst, &s);
        // one merged interval [0,4): busy at 0 and 3, idle at 1, 2
        assert_eq!(trace.states[0][0], SlotState::Busy);
        assert_eq!(trace.states[0][1], SlotState::Idle);
        assert_eq!(trace.states[0][2], SlotState::Idle);
        assert_eq!(trace.states[0][3], SlotState::Busy);
        assert_eq!(trace.states[0][4], SlotState::Sleep);
        assert_eq!(trace.restarts[0], 1);
        assert_eq!(trace.awake_slots[0], 4);
        assert_eq!(trace.busy_slots[0], 2);
        assert_eq!(trace.utilization(0), Some(0.5));
        assert_eq!(trace.fleet_utilization(), Some(0.5));
        assert_eq!(trace.total_energy, s.total_cost);
    }

    #[test]
    fn render_shape() {
        let (inst, s) = solved();
        let r = simulate(&inst, &s).render();
        assert_eq!(r.trim_end(), "p0: #..#S");
    }

    #[test]
    fn display_run_length_encodes() {
        let (inst, s) = solved();
        let line = simulate(&inst, &s).to_string();
        // busy at 0 and 3, idle between, asleep at 4
        assert_eq!(
            line.trim_end(),
            "p0: 1B 2I 1B 1S  (1 restart, 4 awake, 2 busy, 50% utilized)"
        );

        let empty = simulate(
            &Instance::new(1, 3, vec![]),
            &Schedule {
                awake: vec![],
                assignments: vec![],
                total_cost: 0.0,
                scheduled_value: 0.0,
                scheduled_count: 0,
            },
        );
        assert_eq!(
            empty.to_string().trim_end(),
            "p0: 3S  (0 restarts, 0 awake, 0 busy)"
        );
    }

    #[test]
    fn empty_schedule_all_sleep() {
        let inst = Instance::new(2, 3, vec![]);
        let s = Schedule {
            awake: vec![],
            assignments: vec![],
            total_cost: 0.0,
            scheduled_value: 0.0,
            scheduled_count: 0,
        };
        let trace = simulate(&inst, &s);
        assert!(trace
            .states
            .iter()
            .all(|row| row.iter().all(|&x| x == SlotState::Sleep)));
        assert_eq!(trace.utilization(0), None);
        assert_eq!(trace.fleet_utilization(), None);
    }

    #[test]
    fn busy_count_equals_scheduled_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let t = rng.gen_range(4..10u32);
            let p = rng.gen_range(1..3u32);
            let n = rng.gen_range(1..5usize);
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    let proc = rng.gen_range(0..p);
                    let s = rng.gen_range(0..t);
                    let e = rng.gen_range(s + 1..=t);
                    Job::window(1.0, proc, s, e)
                })
                .collect();
            let inst = Instance::new(p, t, jobs);
            let cands =
                enumerate_candidates(&inst, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
            if let Ok(s) = schedule_all(&inst, &cands, &SolveOptions::default()) {
                let trace = simulate(&inst, &s);
                let busy: usize = trace.busy_slots.iter().sum();
                assert_eq!(busy, s.scheduled_count);
                let restarts: usize = trace.restarts.iter().sum();
                assert_eq!(restarts, s.awake.len());
            }
        }
    }
}
