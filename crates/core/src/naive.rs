//! The pre-overhaul ("naive") solve path, retained verbatim.
//!
//! This module preserves the seed implementation that the bitset/arena fast
//! path replaced: per-candidate `Vec<Vec<u32>>` slot lists, per-(candidate ×
//! slot) degree lookups, and unmemoized candidate-by-candidate gain
//! evaluation. It exists for two reasons:
//!
//! 1. **Equivalence proof** — the proptest suite in
//!    `tests/fast_path_equivalence.rs` asserts the fast path produces
//!    bit-identical schedules to these functions across random instances;
//! 2. **Perf trajectory** — the `perf_harness` benchmarks both paths on the
//!    same pinned workloads, so `BENCH_solver.json` records the speedup as a
//!    reproducible number rather than a claim about an unmeasurable past.
//!
//! Nothing in the production call graph ([`crate::Solver`], the engine, the
//! simulator) routes through here.

use bmatch::{hall_violator, BipartiteGraphBuilder, GainScratch, MatchingOracle};
use submodular::{budgeted_greedy, BudgetedObjective, GreedyConfig};

use crate::candidates::CandidateInterval;
use crate::model::{Instance, Schedule, ScheduleError, SlotRef, SolveOptions};

/// The seed reduction: bipartite graph plus per-candidate slot-id vectors.
pub struct NaiveReduction {
    graph: bmatch::BipartiteGraph,
    slot_lists: Vec<Vec<u32>>,
    costs: Vec<f64>,
}

impl NaiveReduction {
    /// Builds the reduction exactly as the seed did: one heap-allocated slot
    /// list per candidate, filtering degree-0 slots through a CSR degree
    /// lookup per slot.
    pub fn build(inst: &Instance, candidates: &[CandidateInterval]) -> Self {
        let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
        for (jid, job) in inst.jobs.iter().enumerate() {
            for &s in &job.allowed {
                b.add_edge(inst.slot_id(s), jid as u32);
            }
        }
        let graph = b.build();

        let slot_lists = candidates
            .iter()
            .map(|iv| {
                (iv.start..iv.end)
                    .map(|t| inst.slot_id(SlotRef::new(iv.proc, t)))
                    .filter(|&sid| graph.deg_x(sid) > 0)
                    .collect()
            })
            .collect();
        let costs = candidates.iter().map(|iv| iv.cost).collect();

        Self {
            graph,
            slot_lists,
            costs,
        }
    }
}

/// The seed objective: candidate-by-candidate gain evaluation, no
/// memoization, no structured scans (it deliberately does **not** override
/// [`BudgetedObjective::scan_gains`]).
pub struct NaiveObjective<'r> {
    red: &'r NaiveReduction,
    oracle: MatchingOracle<'r>,
}

impl<'r> NaiveObjective<'r> {
    /// Cardinality utility: every job counts 1.
    pub fn new_cardinality(red: &'r NaiveReduction) -> Self {
        Self {
            red,
            oracle: MatchingOracle::new_cardinality(&red.graph),
        }
    }

    /// Weighted utility: job `j` counts `values[j] > 0`.
    pub fn new_weighted(red: &'r NaiveReduction, values: Vec<f64>) -> Self {
        Self {
            red,
            oracle: MatchingOracle::new(&red.graph, values),
        }
    }

    fn extract_schedule(
        &self,
        inst: &Instance,
        candidates: &[CandidateInterval],
        chosen: &[usize],
    ) -> Schedule {
        let awake: Vec<CandidateInterval> = chosen.iter().map(|&i| candidates[i]).collect();
        let mut assignments = vec![None; inst.num_jobs()];
        let mut value = 0.0;
        let mut count = 0usize;
        for (slot_id, job) in self.oracle.matching() {
            assignments[job as usize] = Some(inst.slot_ref(slot_id));
            value += inst.jobs[job as usize].value;
            count += 1;
        }
        let total_cost = awake.iter().map(|iv| iv.cost).sum();
        Schedule {
            awake,
            assignments,
            total_cost,
            scheduled_value: value,
            scheduled_count: count,
        }
    }
}

impl BudgetedObjective for NaiveObjective<'_> {
    type Scratch = GainScratch;

    fn num_subsets(&self) -> usize {
        self.red.slot_lists.len()
    }

    fn cost(&self, i: usize) -> f64 {
        self.red.costs[i]
    }

    fn current(&self) -> f64 {
        self.oracle.total()
    }

    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64 {
        self.oracle.gain_of(&self.red.slot_lists[i], scratch)
    }

    fn commit(&mut self, i: usize) -> f64 {
        self.oracle.commit(&self.red.slot_lists[i])
    }
}

/// Seed implementation of Theorem 2.2.1 (schedule **all** jobs); the fast
/// path's [`crate::schedule_all`] must stay bit-identical to this.
pub fn naive_schedule_all(
    inst: &Instance,
    candidates: &[CandidateInterval],
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let n = inst.num_jobs();
    if n == 0 {
        return Ok(empty_schedule(inst));
    }
    if let Some((jid, _)) = inst
        .jobs
        .iter()
        .enumerate()
        .find(|(_, j)| j.allowed.is_empty())
    {
        return Err(ScheduleError::Infeasible {
            certificate: vec![jid as u32],
            achieved_value: 0.0,
        });
    }

    let red = NaiveReduction::build(inst, candidates);
    let mut obj = NaiveObjective::new_cardinality(&red);

    let x = n as f64;
    let eps = 1.0 / (x + 1.0);
    let cfg = GreedyConfig {
        target: x,
        epsilon: eps,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy(&mut obj, cfg);
    if !out.reached_target {
        let certificate = hall_violator(&obj.oracle).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }
    Ok(obj.extract_schedule(inst, candidates, &out.chosen))
}

/// Seed implementation of Theorem 2.3.1 (prize-collecting, `(1−ε)Z`).
pub fn naive_prize_collecting(
    inst: &Instance,
    candidates: &[CandidateInterval],
    target: f64,
    epsilon: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }

    let red = NaiveReduction::build(inst, candidates);
    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    let mut obj = NaiveObjective::new_weighted(&red, values);
    let cfg = GreedyConfig {
        target,
        epsilon,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy(&mut obj, cfg);
    if !out.reached_target {
        let certificate = hall_violator(&obj.oracle).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }
    Ok(obj.extract_schedule(inst, candidates, &out.chosen))
}

/// Seed implementation of Theorem 2.3.3 (prize-collecting, exact `Z`).
pub fn naive_prize_collecting_exact(
    inst: &Instance,
    candidates: &[CandidateInterval],
    target: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }

    let (v_min, v_max) = inst
        .value_range()
        .expect("non-empty instance since target > 0 and target <= total");
    let n = inst.num_jobs() as f64;
    let eps = (v_min / (n * v_max)).min(0.5);

    let red = NaiveReduction::build(inst, candidates);
    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    let mut obj = NaiveObjective::new_weighted(&red, values);
    let cfg = GreedyConfig {
        target,
        epsilon: eps,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy(&mut obj, cfg);
    if !out.reached_target {
        let certificate = hall_violator(&obj.oracle).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }

    let mut chosen = out.chosen.clone();
    let mut scratch = GainScratch::new();
    while obj.current() < target {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..obj.num_subsets() {
            if chosen.contains(&i) {
                continue;
            }
            let g = obj.gain(i, &mut scratch);
            if g > 0.0 {
                let c = obj.cost(i);
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, i));
                }
            }
        }
        let Some((_, idx)) = best else {
            let certificate = hall_violator(&obj.oracle).unwrap_or_default();
            return Err(ScheduleError::Infeasible {
                certificate,
                achieved_value: obj.current(),
            });
        };
        obj.commit(idx);
        chosen.push(idx);
    }

    Ok(obj.extract_schedule(inst, candidates, &chosen))
}

fn empty_schedule(inst: &Instance) -> Schedule {
    Schedule {
        awake: Vec::new(),
        assignments: vec![None; inst.num_jobs()],
        total_cost: 0.0,
        scheduled_value: 0.0,
        scheduled_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::AffineCost;
    use crate::model::{validate_schedule, Job, SlotRef};

    #[test]
    fn naive_path_still_solves() {
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(10.0, 1.0), CandidatePolicy::All);
        let s = naive_schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        assert_eq!(s.total_cost, 14.0);
        assert!(validate_schedule(&inst, &s).is_empty());
    }
}
