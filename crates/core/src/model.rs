//! Scheduling instances, schedules, and validation.
//!
//! Time is discrete: slots `0..horizon`. A *slot reference* is a (processor,
//! time) pair; internally slots get dense ids `proc * horizon + time` so that
//! the bipartite reduction can index arrays directly.

use serde::{Deserialize, Serialize};

use crate::candidates::CandidateInterval;

/// A (processor, time-slot) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotRef {
    /// Processor index, `0..num_processors`.
    pub proc: u32,
    /// Time slot, `0..horizon`.
    pub time: u32,
}

impl SlotRef {
    /// Convenience constructor.
    pub fn new(proc: u32, time: u32) -> Self {
        Self { proc, time }
    }
}

/// A unit-time job: a positive value and the list of slots where it may run.
///
/// `PartialEq` is bitwise on the value (and order-sensitive on the slots):
/// exactly the notion of equality the warm-start instance-identity fast path
/// needs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job value (used by the prize-collecting variants; 1.0 by convention
    /// for schedule-all instances). Must be strictly positive.
    pub value: f64,
    /// Valid (processor, time) pairs — the set `T` of Definition 2. May span
    /// several disjoint intervals on several processors.
    pub allowed: Vec<SlotRef>,
    /// Work requirement in units of computation, for speed-scaling (DVFS)
    /// instances: at frequency `f` the job occupies `ceil(work / f)` slots.
    /// `None` (the legacy fixed-shape encoding — missing from pre-DVFS JSON)
    /// means one unit; the classical solvers ignore anything beyond that and
    /// the DVFS compiler in [`crate::dvfs`] expands larger requirements.
    /// Must be at least 1 when present.
    pub work: Option<u32>,
}

impl Job {
    /// Unit-value job allowed on the given slots.
    pub fn unit(allowed: Vec<SlotRef>) -> Self {
        Self {
            value: 1.0,
            allowed,
            work: None,
        }
    }

    /// Job allowed anywhere in `[start, end)` on processor `proc`.
    pub fn window(value: f64, proc: u32, start: u32, end: u32) -> Self {
        Self {
            value,
            allowed: (start..end).map(|t| SlotRef::new(proc, t)).collect(),
            work: None,
        }
    }

    /// Adds every slot of `[start, end)` on `proc` to the allowed set.
    pub fn add_window(mut self, proc: u32, start: u32, end: u32) -> Self {
        self.allowed
            .extend((start..end).map(|t| SlotRef::new(proc, t)));
        self
    }

    /// Sets the work requirement (builder style).
    pub fn with_work(mut self, work: u32) -> Self {
        self.work = Some(work);
        self
    }

    /// The work requirement, defaulting the legacy encoding to one unit.
    #[inline]
    pub fn work_units(&self) -> u32 {
        self.work.unwrap_or(1)
    }
}

/// A scheduling instance (Definition 2 of the paper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Number of processors `p`.
    pub num_processors: u32,
    /// Number of time slots `T`; valid times are `0..horizon`.
    pub horizon: u32,
    /// The jobs.
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Creates an instance, validating slot references and job values.
    ///
    /// # Panics
    /// Panics if any allowed slot is out of range or a job value is not
    /// strictly positive and finite. Untrusted inputs (deserialized wire
    /// requests, files) should be checked with [`Instance::validate`]
    /// instead.
    pub fn new(num_processors: u32, horizon: u32, jobs: Vec<Job>) -> Self {
        let inst = Self {
            num_processors,
            horizon,
            jobs,
        };
        if let Err(e) = inst.validate() {
            panic!("{e}");
        }
        inst
    }

    /// Checks the structural invariants [`Instance::new`] asserts: every job
    /// value strictly positive and finite, every allowed slot in range.
    ///
    /// Serde deserialization constructs instances field-by-field without
    /// running [`Instance::new`], so anything arriving over a file or the
    /// wire must pass through this check before it reaches a solver (which
    /// indexes arrays by slot id and would otherwise panic).
    pub fn validate(&self) -> Result<(), InstanceError> {
        for (i, j) in self.jobs.iter().enumerate() {
            if !(j.value > 0.0 && j.value.is_finite()) {
                return Err(InstanceError::InvalidValue {
                    job: i as u32,
                    value: j.value,
                });
            }
            if j.work == Some(0) {
                return Err(InstanceError::InvalidWork { job: i as u32 });
            }
            for s in &j.allowed {
                if s.proc >= self.num_processors || s.time >= self.horizon {
                    return Err(InstanceError::OutOfRangeSlot {
                        job: i as u32,
                        slot: *s,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of jobs `n`.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Dense slot id of `s` (`proc * horizon + time`).
    #[inline]
    pub fn slot_id(&self, s: SlotRef) -> u32 {
        s.proc * self.horizon + s.time
    }

    /// Inverse of [`Instance::slot_id`].
    #[inline]
    pub fn slot_ref(&self, id: u32) -> SlotRef {
        SlotRef {
            proc: id / self.horizon,
            time: id % self.horizon,
        }
    }

    /// Total number of dense slot ids (`p · T`).
    #[inline]
    pub fn num_slots(&self) -> u32 {
        self.num_processors * self.horizon
    }

    /// Sum of all job values.
    pub fn total_value(&self) -> f64 {
        self.jobs.iter().map(|j| j.value).sum()
    }

    /// `(v_min, v_max)` over jobs; `None` for empty instances.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        self.jobs
            .iter()
            .map(|j| j.value)
            .fold(None, |acc, v| match acc {
                None => Some((v, v)),
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            })
    }
}

/// Options controlling the greedy solvers.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Use lazy-greedy candidate selection (recommended).
    pub lazy: bool,
    /// Parallelize full candidate scans with rayon.
    pub parallel: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            lazy: true,
            parallel: false,
        }
    }
}

/// A computed schedule: chosen awake intervals plus a job assignment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// Chosen awake intervals, in greedy pick order.
    pub awake: Vec<CandidateInterval>,
    /// Per-job assignment (`None` = not scheduled).
    pub assignments: Vec<Option<SlotRef>>,
    /// Total energy cost of the awake intervals.
    pub total_cost: f64,
    /// Total value of scheduled jobs.
    pub scheduled_value: f64,
    /// Number of scheduled jobs.
    pub scheduled_count: usize,
}

/// Structural problems detected by [`Instance::validate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InstanceError {
    /// A job value is not strictly positive and finite.
    InvalidValue {
        /// Offending job index.
        job: u32,
        /// The rejected value.
        value: f64,
    },
    /// An allowed slot lies outside `processors × horizon`.
    OutOfRangeSlot {
        /// Offending job index.
        job: u32,
        /// The rejected slot reference.
        slot: SlotRef,
    },
    /// A job declares an explicit work requirement of zero.
    InvalidWork {
        /// Offending job index.
        job: u32,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::InvalidValue { job, value } => {
                write!(f, "job {job} has invalid value {value}")
            }
            InstanceError::OutOfRangeSlot { job, slot } => write!(
                f,
                "job {job} references out-of-range slot ({}, {})",
                slot.proc, slot.time
            ),
            InstanceError::InvalidWork { job } => {
                write!(f, "job {job} declares a work requirement of zero")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Why a solve failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// Not all jobs (or not enough value) can be scheduled with the supplied
    /// candidate intervals. The certificate lists a Hall-violating job set
    /// when one exists: more jobs than available distinct slots among the
    /// union of all candidates.
    Infeasible {
        /// Jobs forming a Hall violator (may be empty when the stall is due
        /// to exhausted candidates rather than a matching deficiency).
        certificate: Vec<u32>,
        /// Value scheduled at the stall point.
        achieved_value: f64,
    },
    /// The requested target exceeds the total value present in the instance.
    TargetExceedsTotalValue {
        /// Requested target.
        target: f64,
        /// Sum of all job values.
        total: f64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Infeasible {
                certificate,
                achieved_value,
            } => write!(
                f,
                "infeasible with the supplied candidates (achieved value {achieved_value}; \
                 Hall violator of {} jobs)",
                certificate.len()
            ),
            ScheduleError::TargetExceedsTotalValue { target, total } => {
                write!(f, "target {target} exceeds total instance value {total}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Violations detected by [`validate_schedule`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleViolation {
    /// A job was assigned a slot not in its allowed list.
    DisallowedSlot { job: u32 },
    /// Two jobs share one slot.
    SlotCollision { slot: SlotRef },
    /// An assigned slot is not covered by any awake interval.
    SlotNotAwake { job: u32, slot: SlotRef },
    /// Recorded cost does not match the sum of awake interval costs.
    CostMismatch { recorded: f64, actual: f64 },
    /// Recorded value/count do not match the assignment.
    AccountingMismatch,
}

/// Checks a schedule against its instance: allowed slots, no collisions,
/// awake coverage, and cost/value accounting. Returns all violations found.
pub fn validate_schedule(inst: &Instance, s: &Schedule) -> Vec<ScheduleViolation> {
    let mut out = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut value = 0.0;
    let mut count = 0usize;

    for (jid, asg) in s.assignments.iter().enumerate() {
        let Some(slot) = asg else { continue };
        count += 1;
        value += inst.jobs[jid].value;
        if !inst.jobs[jid].allowed.contains(slot) {
            out.push(ScheduleViolation::DisallowedSlot { job: jid as u32 });
        }
        if !used.insert(*slot) {
            out.push(ScheduleViolation::SlotCollision { slot: *slot });
        }
        let covered = s
            .awake
            .iter()
            .any(|iv| iv.proc == slot.proc && iv.start <= slot.time && slot.time < iv.end);
        if !covered {
            out.push(ScheduleViolation::SlotNotAwake {
                job: jid as u32,
                slot: *slot,
            });
        }
    }

    let actual_cost: f64 = s.awake.iter().map(|iv| iv.cost).sum();
    if (actual_cost - s.total_cost).abs() > 1e-6 {
        out.push(ScheduleViolation::CostMismatch {
            recorded: s.total_cost,
            actual: actual_cost,
        });
    }
    if count != s.scheduled_count || (value - s.scheduled_value).abs() > 1e-6 {
        out.push(ScheduleViolation::AccountingMismatch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> Instance {
        Instance::new(
            2,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(1, 2)]),
                Job::window(2.0, 0, 1, 3),
            ],
        )
    }

    #[test]
    fn slot_id_roundtrip() {
        let inst = tiny_instance();
        for p in 0..2 {
            for t in 0..4 {
                let s = SlotRef::new(p, t);
                assert_eq!(inst.slot_ref(inst.slot_id(s)), s);
            }
        }
        assert_eq!(inst.num_slots(), 8);
    }

    #[test]
    fn job_window_builder() {
        let j = Job::window(1.5, 1, 2, 5);
        assert_eq!(j.allowed.len(), 3);
        assert_eq!(j.allowed[0], SlotRef::new(1, 2));
        let j2 = Job::unit(vec![]).add_window(0, 0, 2).add_window(1, 3, 4);
        assert_eq!(j2.allowed.len(), 3);
    }

    #[test]
    fn totals() {
        let inst = tiny_instance();
        assert_eq!(inst.total_value(), 3.0);
        assert_eq!(inst.value_range(), Some((1.0, 2.0)));
        assert_eq!(inst.num_jobs(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range slot")]
    fn out_of_range_slot_rejected() {
        Instance::new(1, 2, vec![Job::unit(vec![SlotRef::new(0, 2)])]);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn non_positive_value_rejected() {
        Instance::new(
            1,
            2,
            vec![Job {
                value: 0.0,
                allowed: vec![],
                work: None,
            }],
        );
    }

    #[test]
    fn validate_reports_structural_errors_without_panicking() {
        let ok = tiny_instance();
        assert_eq!(ok.validate(), Ok(()));

        // construct field-by-field, as serde deserialization does
        let bad_slot = Instance {
            num_processors: 1,
            horizon: 2,
            jobs: vec![Job::unit(vec![SlotRef { proc: 0, time: 5 }])],
        };
        assert_eq!(
            bad_slot.validate(),
            Err(InstanceError::OutOfRangeSlot {
                job: 0,
                slot: SlotRef { proc: 0, time: 5 }
            })
        );
        assert!(bad_slot
            .validate()
            .unwrap_err()
            .to_string()
            .contains("out-of-range slot"));

        let bad_value = Instance {
            num_processors: 1,
            horizon: 2,
            jobs: vec![Job {
                value: f64::NAN,
                allowed: vec![],
                work: None,
            }],
        };
        assert!(matches!(
            bad_value.validate(),
            Err(InstanceError::InvalidValue { job: 0, .. })
        ));

        let zero_work = Instance {
            num_processors: 1,
            horizon: 2,
            jobs: vec![Job::unit(vec![SlotRef::new(0, 0)]).with_work(0)],
        };
        assert_eq!(
            zero_work.validate(),
            Err(InstanceError::InvalidWork { job: 0 })
        );
        assert!(zero_work
            .validate()
            .unwrap_err()
            .to_string()
            .contains("work requirement of zero"));
    }

    #[test]
    fn work_units_defaults_to_one() {
        let j = Job::unit(vec![SlotRef::new(0, 0)]);
        assert_eq!(j.work, None);
        assert_eq!(j.work_units(), 1);
        let j = j.with_work(3);
        assert_eq!(j.work_units(), 3);
        Instance::new(1, 1, vec![Job::unit(vec![SlotRef::new(0, 0)]).with_work(2)]);
    }

    #[test]
    fn validation_catches_violations() {
        let inst = tiny_instance();
        let good = Schedule {
            awake: vec![CandidateInterval {
                proc: 0,
                start: 0,
                end: 3,
                cost: 5.0,
            }],
            assignments: vec![Some(SlotRef::new(0, 0)), Some(SlotRef::new(0, 1))],
            total_cost: 5.0,
            scheduled_value: 3.0,
            scheduled_count: 2,
        };
        assert!(validate_schedule(&inst, &good).is_empty());

        // collision + disallowed + not-awake + bad accounting
        let bad = Schedule {
            awake: vec![],
            assignments: vec![Some(SlotRef::new(0, 3)), Some(SlotRef::new(0, 3))],
            total_cost: 1.0,
            scheduled_value: 0.0,
            scheduled_count: 0,
        };
        let v = validate_schedule(&inst, &bad);
        assert!(v.contains(&ScheduleViolation::DisallowedSlot { job: 0 }));
        assert!(v.contains(&ScheduleViolation::SlotCollision {
            slot: SlotRef::new(0, 3)
        }));
        assert!(v
            .iter()
            .any(|x| matches!(x, ScheduleViolation::SlotNotAwake { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, ScheduleViolation::CostMismatch { .. })));
        assert!(v.contains(&ScheduleViolation::AccountingMismatch));
    }

    #[test]
    fn empty_instance_value_range() {
        let inst = Instance::new(1, 1, vec![]);
        assert_eq!(inst.value_range(), None);
        assert_eq!(inst.total_value(), 0.0);
    }
}
