//! The DVFS layer's two reduction contracts, property-tested.
//!
//! 1. **Degenerate-ladder identity**: the single-frequency ladder
//!    (`gamma = 1`, `beta = 0`, `freqs = [1]`, so `P(1) = rate` bitwise)
//!    must reduce speed scaling to the classical fixed-shape model
//!    *bit-for-bit* — same compiled instance, same candidate family with
//!    the same `f64` cost bits as `AffineCost`, and the same schedule.
//!    This is what lets pre-DVFS callers ignore the ladder entirely.
//! 2. **Fast/naive identity**: `solve_dvfs` (hot path) and
//!    `solve_dvfs_naive` (retained seed path) agree bit-for-bit on random
//!    multi-frequency instances, extending the `fast_path_equivalence`
//!    guarantee through the compile → solve → decompile pipeline.
//!
//! Plus the serde back-compat anchor: legacy instance JSON without `work`
//! fields parses and solves exactly as before the refactor.

use proptest::prelude::*;
use sched_core::dvfs::DvfsInstance;
use sched_core::{
    enumerate_candidates, solve_dvfs, solve_dvfs_naive, validate_dvfs_schedule, AffineCost,
    CandidatePolicy, FreqLadder, Instance, Job, SlotRef, Solver,
};

/// Random classical instance: sizing plus per-job windows and value seeds.
#[allow(clippy::type_complexity)]
fn window_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, u32, u32)>)> {
    (1u32..4, 3u32..12).prop_flat_map(|(p, t)| {
        let jobs = proptest::collection::vec((0..p, 0..t, 1u32..5, 1u32..9), 1..10);
        (Just(p), Just(t), jobs)
    })
}

fn build_jobs(t: u32, jobs: &[(u32, u32, u32, u32)], works: Option<&[u32]>) -> Vec<Job> {
    jobs.iter()
        .enumerate()
        .map(|(i, &(proc, start, len, value))| Job {
            value: value as f64,
            allowed: (start..(start + len).min(t).max(start + 1).min(t))
                .map(|time| SlotRef::new(proc, time))
                .collect(),
            work: works.map(|w| w[i]),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Contract 1: the degenerate ladder compiles to the *same* problem the
    // classical affine model solves — candidates and schedules bit-identical.
    #[test]
    fn degenerate_ladder_reduces_to_fixed_shape_pricing(
        (p, t, jobs) in window_strategy(),
        wake_tenths in 0u32..80,
        rate_tenths in 1u32..40,
    ) {
        let wake = f64::from(wake_tenths) / 10.0;
        let rate = f64::from(rate_tenths) / 10.0;
        let inst = Instance::new(p, t, build_jobs(t, &jobs, None));
        let dvfs = DvfsInstance {
            num_processors: p,
            horizon: t,
            wake_cost: wake,
            ladder: FreqLadder::degenerate(rate),
            jobs: inst.jobs.clone(),
        };
        let compiled = dvfs.compile().expect("degenerate compile");

        // The compiled virtual grid *is* the physical grid (1 level, top
        // frequency 1), and its candidate family carries the same cost bits
        // as the classical affine enumeration.
        prop_assert_eq!(compiled.instance.num_processors, p);
        prop_assert_eq!(compiled.instance.horizon, t);
        let affine = AffineCost::new(wake, rate);
        let classical = enumerate_candidates(&inst, &affine, CandidatePolicy::All);
        prop_assert_eq!(compiled.candidates.len(), classical.len(), "candidate family size");
        for (a, b) in compiled.candidates.iter().zip(&classical) {
            prop_assert_eq!(a.proc, b.proc);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "candidate cost bits");
        }

        // And the solved schedules agree bit-for-bit, interval by interval.
        let classical = Solver::new(&inst, &affine).schedule_all();
        let dvfs_sched = solve_dvfs(&dvfs);
        match (classical, dvfs_sched) {
            (Ok(c), Ok(d)) => {
                prop_assert_eq!(c.total_cost.to_bits(), d.total_cost.to_bits(), "total cost bits");
                prop_assert_eq!(c.scheduled_value.to_bits(), d.scheduled_value.to_bits());
                prop_assert_eq!(c.awake.len(), d.awake.len());
                for (a, b) in c.awake.iter().zip(&d.awake) {
                    prop_assert_eq!(a.proc, b.proc);
                    prop_assert_eq!(a.start, b.start);
                    prop_assert_eq!(a.end, b.end);
                    prop_assert_eq!(b.freq, 1u32);
                    prop_assert_eq!(b.level, 0usize);
                    prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "interval cost bits");
                }
                // One work unit per job, in the slot the classical
                // assignment picked.
                for (jid, (slot, quanta)) in c.assignments.iter().zip(&d.assignments).enumerate() {
                    match slot {
                        Some(s) => {
                            prop_assert_eq!(quanta.len(), 1, "job {}", jid);
                            prop_assert_eq!(quanta[0].proc, s.proc);
                            prop_assert_eq!(quanta[0].time, s.time);
                        }
                        None => prop_assert!(quanta.is_empty()),
                    }
                }
            }
            (Err(_), Err(_)) => {}
            (c, d) => {
                return Err(TestCaseError::fail(format!(
                    "outcomes diverge: classical {c:?} vs dvfs {d:?}"
                )));
            }
        }
    }

    // Contract 2: fast and naive DVFS paths are bit-identical on random
    // multi-frequency instances with random work requirements.
    #[test]
    fn dvfs_fast_and_naive_paths_are_bit_identical(
        (p, t, jobs) in window_strategy(),
        works in proptest::collection::vec(1u32..5, 10),
        wake_tenths in 0u32..60,
        ladder_kind in 0u8..3,
    ) {
        let ladder = match ladder_kind {
            0 => FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]),
            1 => FreqLadder::new(0.5, 1.0, 2.0, vec![1, 2, 4]),
            _ => FreqLadder::new(1.0, 0.5, 3.0, vec![1, 3]),
        };
        let dvfs = DvfsInstance {
            num_processors: p,
            horizon: t,
            wake_cost: f64::from(wake_tenths) / 10.0,
            ladder,
            jobs: build_jobs(t, &jobs, Some(&works[..jobs.len()])),
        };
        let fast = solve_dvfs(&dvfs);
        let naive = solve_dvfs_naive(&dvfs);
        match (fast, naive) {
            (Ok(f), Ok(n)) => {
                prop_assert_eq!(f.total_cost.to_bits(), n.total_cost.to_bits(), "total cost bits");
                prop_assert_eq!(f.scheduled_value.to_bits(), n.scheduled_value.to_bits());
                prop_assert_eq!(f.awake.len(), n.awake.len());
                for (a, b) in f.awake.iter().zip(&n.awake) {
                    prop_assert_eq!(a.proc, b.proc);
                    prop_assert_eq!(a.level, b.level);
                    prop_assert_eq!(a.freq, b.freq);
                    prop_assert_eq!(a.start, b.start);
                    prop_assert_eq!(a.end, b.end);
                    prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "interval cost bits");
                }
                prop_assert_eq!(&f.assignments, &n.assignments, "work-unit placements");
                // Both are genuinely valid DVFS schedules, not just equal.
                prop_assert_eq!(validate_dvfs_schedule(&dvfs, &f), vec![]);
            }
            (Err(f), Err(n)) => prop_assert_eq!(format!("{f:?}"), format!("{n:?}")),
            (f, n) => {
                return Err(TestCaseError::fail(format!(
                    "outcomes diverge: fast {f:?} vs naive {n:?}"
                )));
            }
        }
    }
}

// Legacy instance JSON — written before jobs had a `work` field — must
// parse with every job at one work unit and solve exactly as before.
#[test]
fn legacy_instance_json_parses_and_solves_unchanged() {
    let legacy = r#"{
        "num_processors": 1,
        "horizon": 4,
        "jobs": [
            {"value": 1.0, "allowed": [{"proc": 0, "time": 0}]},
            {"value": 2.0, "allowed": [{"proc": 0, "time": 3}]}
        ]
    }"#;
    let inst: Instance = serde_json::from_str(legacy).expect("legacy JSON parses");
    assert_eq!(inst.validate(), Ok(()));
    assert!(inst.jobs.iter().all(|j| j.work.is_none()));
    assert!(inst.jobs.iter().all(|j| j.work_units() == 1));

    // The exact pre-refactor outcome: keeping the processor awake through
    // the gap beats a second wake (10 + 4·1 = 14 < 2·10 + 2).
    let cost = AffineCost::new(10.0, 1.0);
    let s = Solver::new(&inst, &cost).schedule_all().expect("solves");
    assert_eq!(s.awake.len(), 1);
    assert_eq!(s.total_cost, 14.0);

    // And re-serializing omits nothing a legacy reader would choke on:
    // `work` serializes as null, which old decoders treated as absent.
    let back = serde_json::to_string(&inst).unwrap();
    let reparsed: Instance = serde_json::from_str(&back).unwrap();
    assert!(reparsed.jobs.iter().all(|j| j.work.is_none()));
}
