//! The fast path's correctness contract: **bit-identical** schedules to the
//! retained naive (seed) implementation.
//!
//! Every hot-path trick — flat CSR slot lists, nested-prefix run scans,
//! component-memoized gains, the cached reduction inside `Solver` — claims
//! to change *nothing* about what the greedy computes, only how fast it
//! computes it. These proptests pin that claim across random instances and
//! cost models, comparing full `Schedule` values (awake intervals with their
//! exact `f64` costs, per-job assignments, totals) and error cases.

use proptest::prelude::*;
use sched_core::naive::{naive_prize_collecting, naive_prize_collecting_exact, naive_schedule_all};
use sched_core::{
    enumerate_candidates, prize_collecting, prize_collecting_exact, schedule_all, AffineCost,
    CandidatePolicy, EnergyCost, Instance, Job, PowerProfile, ProfileCost, Schedule, ScheduleError,
    SlotRef, SolveOptions, Solver, TimeVaryingCost, UnavailableSlots,
};

/// Strategy: a random instance as raw sizing + job windows + value seeds.
#[allow(clippy::type_complexity)]
fn instance_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, u32, u32)>)> {
    (1u32..4, 3u32..16).prop_flat_map(|(p, t)| {
        let jobs = proptest::collection::vec((0..p, 0..t, 1u32..6, 1u32..9), 1..14);
        (Just(p), Just(t), jobs)
    })
}

fn build_instance(p: u32, t: u32, jobs: &[(u32, u32, u32, u32)]) -> Instance {
    let jobs = jobs
        .iter()
        .map(|&(proc, start, len, value)| {
            let end = (start + len).min(t);
            Job {
                value: value as f64,
                allowed: (start..end.max(start + 1).min(t))
                    .map(|time| SlotRef::new(proc, time))
                    .collect(),
                work: None,
            }
        })
        .collect();
    Instance::new(p, t, jobs)
}

/// Asserts two solve outcomes are bit-identical (schedules or errors).
fn assert_identical(
    fast: &Result<Schedule, ScheduleError>,
    naive: &Result<Schedule, ScheduleError>,
) -> Result<(), TestCaseError> {
    match (fast, naive) {
        (Ok(f), Ok(n)) => {
            prop_assert_eq!(f.awake.len(), n.awake.len(), "awake interval count");
            for (a, b) in f.awake.iter().zip(&n.awake) {
                prop_assert_eq!(a.proc, b.proc);
                prop_assert_eq!(a.start, b.start);
                prop_assert_eq!(a.end, b.end);
                prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "interval cost bits");
            }
            prop_assert_eq!(&f.assignments, &n.assignments, "assignments");
            prop_assert_eq!(
                f.total_cost.to_bits(),
                n.total_cost.to_bits(),
                "total cost bits"
            );
            prop_assert_eq!(
                f.scheduled_value.to_bits(),
                n.scheduled_value.to_bits(),
                "scheduled value bits"
            );
            prop_assert_eq!(f.scheduled_count, n.scheduled_count);
        }
        (Err(ef), Err(en)) => prop_assert_eq!(ef, en, "error mismatch"),
        (f, n) => prop_assert!(false, "outcome mismatch: fast {f:?} vs naive {n:?}"),
    }
    Ok(())
}

/// One cost model per `pick` value, exercising all four oracle layouts
/// (uniform affine, time-varying arenas, unavailability wrappers, and
/// heterogeneous per-processor profiles).
fn cost_model(pick: u8, p: u32, t: u32) -> Box<dyn EnergyCost> {
    match pick % 4 {
        0 => Box::new(AffineCost::new(3.0, 1.0)),
        3 => Box::new(ProfileCost::new(
            &(0..p)
                .map(|proc| PowerProfile::affine(2.0 + proc as f64, 0.5 + 0.75 * proc as f64))
                .collect::<Vec<_>>(),
        )),
        1 => Box::new(TimeVaryingCost::new(
            2.0,
            (0..p)
                .map(|proc| {
                    (0..t)
                        .map(|time| {
                            if (proc + time) % 7 == 3 {
                                f64::INFINITY
                            } else {
                                1.0 + ((proc + 2 * time) % 5) as f64
                            }
                        })
                        .collect()
                })
                .collect(),
        )),
        _ => Box::new(UnavailableSlots::new(
            AffineCost::new(1.5, 0.5),
            p,
            &(0..p)
                .flat_map(|proc| {
                    (0..t)
                        .filter(move |time| (proc + time) % 6 == 1)
                        .map(move |time| (proc, time))
                })
                .collect::<Vec<_>>(),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_all_bit_identical((p, t, jobs) in instance_strategy(),
                                  cost_pick in 0u8..4,
                                  lazy in any::<bool>()) {
        let inst = build_instance(p, t, &jobs);
        let cost = cost_model(cost_pick, p, t);
        let cands = enumerate_candidates(&inst, cost.as_ref(), CandidatePolicy::All);
        let opts = SolveOptions { lazy, parallel: false };
        let fast = schedule_all(&inst, &cands, &opts);
        let naive = naive_schedule_all(&inst, &cands, &opts);
        assert_identical(&fast, &naive)?;
    }

    #[test]
    fn prize_collecting_bit_identical((p, t, jobs) in instance_strategy(),
                                      cost_pick in 0u8..4,
                                      lazy in any::<bool>(),
                                      frac in 1u32..10) {
        let inst = build_instance(p, t, &jobs);
        let cost = cost_model(cost_pick, p, t);
        let cands = enumerate_candidates(&inst, cost.as_ref(), CandidatePolicy::All);
        let opts = SolveOptions { lazy, parallel: false };
        let target = inst.total_value() * frac as f64 / 10.0;

        let fast = prize_collecting(&inst, &cands, target, 0.25, &opts);
        let naive = naive_prize_collecting(&inst, &cands, target, 0.25, &opts);
        assert_identical(&fast, &naive)?;

        let fast = prize_collecting_exact(&inst, &cands, target, &opts);
        let naive = naive_prize_collecting_exact(&inst, &cands, target, &opts);
        assert_identical(&fast, &naive)?;
    }

    #[test]
    fn solver_goal_sequence_matches_naive((p, t, jobs) in instance_strategy(),
                                          frac in 1u32..10) {
        // the Solver reuses one cached reduction across goal calls; every
        // call must still match a from-scratch naive solve
        let inst = build_instance(p, t, &jobs);
        let cost = AffineCost::new(2.0, 1.0);
        let solver = Solver::new(&inst, &cost);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let opts = SolveOptions::default();
        let target = inst.total_value() * frac as f64 / 10.0;

        assert_identical(&solver.schedule_all(), &naive_schedule_all(&inst, &cands, &opts))?;
        assert_identical(
            &solver.prize_collecting(target, 0.25),
            &naive_prize_collecting(&inst, &cands, target, 0.25, &opts),
        )?;
        assert_identical(
            &solver.prize_collecting_exact(target),
            &naive_prize_collecting_exact(&inst, &cands, target, &opts),
        )?;
        // repeat the first goal: the memo-warmed second run must not drift
        assert_identical(&solver.schedule_all(), &naive_schedule_all(&inst, &cands, &opts))?;
    }

    /// Heterogeneous instances: fully random per-processor profiles (wake,
    /// busy rate, and sleep-ladder depth drawn per processor). The fast
    /// path must stay bit-identical to naive on awake intervals,
    /// assignments, and every f64 cost bit — heterogeneity enters solely
    /// through candidate pricing, so nothing in the hot path may assume a
    /// uniform fleet. Ladders are included deliberately: they must not leak
    /// into interval pricing at all.
    #[test]
    fn heterogeneous_profiles_bit_identical(
        (p, t, jobs) in instance_strategy(),
        params in proptest::collection::vec((1u32..12, 1u32..8, 0u32..3), 4),
        lazy in any::<bool>(),
        frac in 1u32..10,
    ) {
        let inst = build_instance(p, t, &jobs);
        let fleet: Vec<PowerProfile> = (0..p as usize)
            .map(|proc| {
                let (wake, busy, ladder) = params[proc];
                PowerProfile::envelope_ladder(wake as f64 * 0.75, busy as f64 * 0.5, ladder)
            })
            .collect();
        let cost = ProfileCost::new(&fleet);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let opts = SolveOptions { lazy, parallel: false };

        assert_identical(
            &schedule_all(&inst, &cands, &opts),
            &naive_schedule_all(&inst, &cands, &opts),
        )?;
        let target = inst.total_value() * frac as f64 / 10.0;
        assert_identical(
            &prize_collecting(&inst, &cands, target, 0.25, &opts),
            &naive_prize_collecting(&inst, &cands, target, 0.25, &opts),
        )?;
        assert_identical(
            &prize_collecting_exact(&inst, &cands, target, &opts),
            &naive_prize_collecting_exact(&inst, &cands, target, &opts),
        )?;
    }

    #[test]
    fn parallel_scan_bit_identical((p, t, jobs) in instance_strategy(),
                                   lazy in any::<bool>()) {
        let inst = build_instance(p, t, &jobs);
        let cost = AffineCost::new(3.0, 1.0);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let seq = schedule_all(&inst, &cands, &SolveOptions { lazy, parallel: false });
        let par = schedule_all(&inst, &cands, &SolveOptions { lazy, parallel: true });
        assert_identical(&par, &seq)?;
    }
}

/// Word-boundary horizons push dense slot ids across u64 word edges; the
/// fast path must stay identical there too (fixed seeds, not proptest, so
/// the exact horizons 63/64/65 are always exercised).
#[test]
fn word_boundary_horizons_bit_identical() {
    for horizon in [63u32, 64, 65] {
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::window(1.0 + (i % 4) as f64, i % 2, i * 5 % horizon, horizon))
            .collect();
        let inst = Instance::new(2, horizon, jobs);
        let cost = AffineCost::new(4.0, 1.0);
        // MaxLength keeps the family size civilised at T=65
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::MaxLength(9));
        let opts = SolveOptions::default();
        let fast = schedule_all(&inst, &cands, &opts);
        let naive = naive_schedule_all(&inst, &cands, &opts);
        match (&fast, &naive) {
            (Ok(f), Ok(n)) => {
                assert_eq!(
                    f.total_cost.to_bits(),
                    n.total_cost.to_bits(),
                    "T={horizon}"
                );
                assert_eq!(f.assignments, n.assignments, "T={horizon}");
            }
            (Err(ef), Err(en)) => assert_eq!(ef, en, "T={horizon}"),
            other => panic!("outcome mismatch at T={horizon}: {other:?}"),
        }
    }
}
