//! Property tests for the budgeted greedy across objective implementations:
//! lazy ≡ eager ≡ parallel, fast coverage objective ≡ generic objective,
//! trace/accounting invariants, and Lemma 2.1.1 (the paper's key lemma).

use proptest::prelude::*;
use submodular::functions::CoverageFn;
use submodular::{
    budgeted_greedy, BitSet, CoverageObjective, GreedyConfig, SetFn, SetSystemObjective,
};

#[derive(Debug, Clone)]
struct Inst {
    universe: usize,
    covers: Vec<Vec<u32>>,
    subsets: Vec<Vec<u32>>,
    costs: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Inst> {
    (4usize..20, 3usize..10).prop_flat_map(|(universe, n)| {
        let covers =
            proptest::collection::vec(proptest::collection::vec(0u32..universe as u32, 0..5), n);
        let m = 2usize..7;
        (Just(universe), covers, m).prop_flat_map(move |(u, cov, m)| {
            let nn = cov.len();
            let subsets =
                proptest::collection::vec(proptest::collection::vec(0u32..nn as u32, 1..=nn), m);
            let costs = proptest::collection::vec(1u32..6, m);
            (Just(u), Just(cov), subsets, costs).prop_map(|(u, cov, mut subs, costs)| {
                for s in subs.iter_mut() {
                    s.sort_unstable();
                    s.dedup();
                }
                Inst {
                    universe: u,
                    covers: cov,
                    subsets: subs,
                    costs: costs.into_iter().map(|c| c as f64).collect(),
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_greedy_variants_agree(inst in instance_strategy(), eps_exp in 1i32..6,
                                 target_frac in 0.1f64..1.0) {
        let f = CoverageFn::unweighted(inst.universe, inst.covers.clone());
        let full = f.eval(&BitSet::full(f.ground_size()));
        let target = full * target_frac;
        let eps = 2f64.powi(-eps_exp);

        let run = |lazy: bool, parallel: bool| {
            let mut obj = SetSystemObjective::new(&f, inst.subsets.clone(), inst.costs.clone());
            let cfg = GreedyConfig { target, epsilon: eps, lazy, parallel };
            budgeted_greedy(&mut obj, cfg)
        };
        let eager = run(false, false);
        let lazy = run(true, false);
        let par = run(false, true);
        prop_assert_eq!(&eager.chosen, &lazy.chosen);
        prop_assert_eq!(&eager.chosen, &par.chosen);
        prop_assert_eq!(eager.total_cost, lazy.total_cost);
        prop_assert!(lazy.evaluations <= eager.evaluations);

        // fast coverage objective makes identical picks too
        let mut fast = CoverageObjective::new(&f, inst.subsets.clone(), inst.costs.clone());
        let fast_out = budgeted_greedy(&mut fast, GreedyConfig { target, epsilon: eps, lazy: false, parallel: false });
        prop_assert_eq!(&eager.chosen, &fast_out.chosen);
        prop_assert!((eager.utility - fast_out.utility).abs() < 1e-9);
    }

    #[test]
    fn outcome_accounting_invariants(inst in instance_strategy(), eps_exp in 1i32..5) {
        let f = CoverageFn::unweighted(inst.universe, inst.covers.clone());
        let full = f.eval(&BitSet::full(f.ground_size()));
        prop_assume!(full > 0.0);
        let eps = 2f64.powi(-eps_exp);
        let mut obj = SetSystemObjective::new(&f, inst.subsets.clone(), inst.costs.clone());
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(full, eps));

        // chosen are distinct and valid indices
        let mut ch = out.chosen.clone();
        ch.sort_unstable();
        ch.dedup();
        prop_assert_eq!(ch.len(), out.chosen.len());
        prop_assert!(out.chosen.iter().all(|&i| i < inst.subsets.len()));

        // trace matches chosen; costs add up; utility_after is non-decreasing
        prop_assert_eq!(out.trace.len(), out.chosen.len());
        let cost_sum: f64 = out.trace.iter().map(|r| r.cost).sum();
        prop_assert!((cost_sum - out.total_cost).abs() < 1e-9);
        let mut prev = 0.0;
        for r in &out.trace {
            prop_assert!(r.utility_after >= prev - 1e-9);
            prev = r.utility_after;
        }

        // final utility equals F of the committed union
        let mut union = BitSet::new(f.ground_size());
        for &i in &out.chosen {
            for &e in &inst.subsets[i] {
                union.insert(e);
            }
        }
        prop_assert!((f.eval(&union) - out.utility).abs() < 1e-9);
    }

    #[test]
    fn lemma_2_1_1_holds(inst in instance_strategy(),
                         s_prime_bits in proptest::collection::vec(any::<bool>(), 10)) {
        // Lemma 2.1.1: Σⱼ [F(S' ∪ Sⱼ) − F(S')] ≥ F(T) − F(S') where T = ∪ Sⱼ.
        let f = CoverageFn::unweighted(inst.universe, inst.covers.clone());
        let n = f.ground_size();
        let s_prime = BitSet::from_iter(
            n,
            (0..n as u32).filter(|&e| *s_prime_bits.get(e as usize).unwrap_or(&false)),
        );
        let f_sp = f.eval(&s_prime);

        let mut t = BitSet::new(n);
        let mut gain_sum = 0.0;
        for subset in &inst.subsets {
            let mut su = s_prime.clone();
            for &e in subset {
                su.insert(e);
                t.insert(e);
            }
            gain_sum += f.eval(&su) - f_sp;
        }
        let f_t = f.eval(&t);
        prop_assert!(
            gain_sum >= f_t - f_sp - 1e-9,
            "Lemma 2.1.1 violated: {} < {}", gain_sum, f_t - f_sp
        );
    }
}
