//! Submodular maximization with budget constraints — the bicriteria greedy of
//! Lemma 2.1.2.
//!
//! Given allowable subsets `S₁..S_m` with positive costs `Cᵢ`, a monotone
//! submodular utility `F`, and a target `x`, the greedy repeatedly picks the
//! subset maximizing
//!
//! ```text
//! ( min{x, F(S ∪ Sᵢ)} − F(S) ) / Cᵢ
//! ```
//!
//! until utility reaches `(1−ε)x`. Lemma 2.1.2 proves: if some collection of
//! cost `B` achieves utility `x`, the greedy's cost is at most
//! `2B⌈log₂(1/ε)⌉`.
//!
//! # Oracle abstraction
//!
//! The greedy is generic over [`BudgetedObjective`], which exposes exact
//! marginal-gain evaluation *without mutation* plus a commit operation. This
//! lets the identical greedy drive explicit set systems (this module's
//! [`SetSystemObjective`]) and the incremental matching-rank oracles of the
//! scheduling reduction (`sched-core`), including lazily and in parallel.
//!
//! # Lazy evaluation
//!
//! Because `F` is submodular and the clamp `min(x, ·)` only tightens as
//! `F(S)` grows, each candidate's ratio is non-increasing over the run; stale
//! heap entries are therefore valid upper bounds, and the classical
//! lazy-greedy (re-evaluate the top of the heap until the top is fresh) makes
//! exactly the same choices as the eager scan up to ties, which we break
//! deterministically by `(ratio, cost, index)`.

use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::functions::SetFn;

/// Objective oracle for the budgeted greedy.
///
/// Implementations maintain a current solution set `S` internally; `gain(i)`
/// must return the exact `F(S ∪ Sᵢ) − F(S)` without changing `S`, and
/// `commit(i)` must apply `S ← S ∪ Sᵢ` and return the realized gain.
pub trait BudgetedObjective: Sync {
    /// Per-thread scratch for gain evaluation.
    type Scratch: Default + Send;

    /// Number of allowable subsets `m`.
    fn num_subsets(&self) -> usize;

    /// Cost `Cᵢ > 0` of subset `i`.
    fn cost(&self, i: usize) -> f64;

    /// Current utility `F(S)`.
    fn current(&self) -> f64;

    /// Exact marginal gain of subset `i` against the current solution.
    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64;

    /// Commits subset `i`; returns the realized gain.
    fn commit(&mut self, i: usize) -> f64;

    /// Evaluates the raw marginal gain of **every** subset against the
    /// current solution, writing into `out` (cleared and resized to
    /// [`BudgetedObjective::num_subsets`]).
    ///
    /// The default simply loops [`BudgetedObjective::gain`] (in parallel
    /// with one scratch per thread when `parallel` is set). Objectives with
    /// structure among their subsets override this: `sched-core`'s
    /// scheduling objective evaluates each nested-prefix run of awake
    /// intervals in a single incremental pass, which is where the greedy's
    /// full-scan cost collapses from `O(m · |T|)` to `O(m)` oracle work.
    /// Overrides must return bit-identical values to the default.
    fn scan_gains(&self, parallel: bool, scratch: &mut Self::Scratch, out: &mut Vec<f64>) {
        let m = self.num_subsets();
        out.clear();
        if parallel {
            let gains: Vec<f64> = (0..m)
                .into_par_iter()
                .map_init(Self::Scratch::default, |s, i| self.gain(i, s))
                .collect();
            out.extend(gains);
        } else {
            out.extend((0..m).map(|i| self.gain(i, scratch)));
        }
    }
}

/// Configuration for [`budgeted_greedy`].
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Utility target `x`.
    pub target: f64,
    /// Bicriteria slack `ε ∈ (0, 1)`: the greedy stops at utility
    /// `(1−ε)·target`.
    pub epsilon: f64,
    /// Use the lazy-greedy heap instead of full scans.
    pub lazy: bool,
    /// Parallelize full candidate scans with rayon (only affects the
    /// non-lazy path and the initial heap build).
    pub parallel: bool,
}

impl GreedyConfig {
    /// Eager sequential config with the given target and slack.
    pub fn new(target: f64, epsilon: f64) -> Self {
        Self {
            target,
            epsilon,
            lazy: false,
            parallel: false,
        }
    }

    /// Lazy-greedy config (recommended for large candidate families).
    pub fn lazy(target: f64, epsilon: f64) -> Self {
        Self {
            target,
            epsilon,
            lazy: true,
            parallel: false,
        }
    }
}

/// One greedy iteration, for phase-structure experiments (E2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterRecord {
    /// Chosen subset index.
    pub chosen: usize,
    /// Clamped gain realized.
    pub gain: f64,
    /// Cost paid.
    pub cost: f64,
    /// Utility after the commit.
    pub utility_after: f64,
}

/// Result of a [`budgeted_greedy`] run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Chosen subset indices, in pick order.
    pub chosen: Vec<usize>,
    /// Total cost paid.
    pub total_cost: f64,
    /// Final utility `F(S)`.
    pub utility: f64,
    /// Whether utility ≥ `(1−ε)·target` was reached.
    pub reached_target: bool,
    /// Number of exact gain evaluations performed (lazy-greedy effectiveness
    /// metric).
    pub evaluations: usize,
    /// Per-iteration trace.
    pub trace: Vec<IterRecord>,
}

/// Runs the Lemma 2.1.2 bicriteria greedy to utility `(1−ε)·target`.
///
/// Returns with `reached_target == false` if the greedy stalls (no candidate
/// has positive clamped gain) before reaching the goal; on monotone
/// submodular objectives this certifies that *no* collection of the given
/// subsets attains the target.
///
/// # Panics
/// Panics if `epsilon ∉ (0,1)`, `target < 0`, or any cost is not strictly
/// positive and finite.
pub fn budgeted_greedy<O: BudgetedObjective>(obj: &mut O, cfg: GreedyConfig) -> GreedyOutcome {
    budgeted_greedy_with(obj, cfg, &mut O::Scratch::default())
}

/// [`budgeted_greedy`] with a caller-supplied scratch.
///
/// The scratch is the per-thread gain-evaluation workspace; objectives that
/// memoize evaluations in it (like `sched-core`'s scheduling objective) can
/// pre-seed the memo before the run so the greedy's initial full scan replays
/// cached values instead of recomputing them — the warm-start path of
/// incremental re-solving. With a default-constructed scratch this is exactly
/// [`budgeted_greedy`].
pub fn budgeted_greedy_with<O: BudgetedObjective>(
    obj: &mut O,
    cfg: GreedyConfig,
    scratch: &mut O::Scratch,
) -> GreedyOutcome {
    assert!(
        cfg.epsilon > 0.0 && cfg.epsilon < 1.0,
        "epsilon must lie in (0,1), got {}",
        cfg.epsilon
    );
    assert!(cfg.target >= 0.0, "target must be non-negative");
    let m = obj.num_subsets();
    for i in 0..m {
        let c = obj.cost(i);
        assert!(
            c > 0.0 && c.is_finite(),
            "cost of subset {i} must be positive and finite, got {c}"
        );
    }

    // One span + a few counter flushes per greedy run (not per iteration):
    // telemetry stays out of the pick/evaluate hot loops.
    let _span = sched_obs::span!("submodular.greedy.run_ns");
    let goal = (1.0 - cfg.epsilon) * cfg.target;
    let mut out = GreedyOutcome {
        chosen: Vec::new(),
        total_cost: 0.0,
        utility: obj.current(),
        reached_target: obj.current() >= goal,
        evaluations: 0,
        trace: Vec::new(),
    };
    if out.reached_target || m == 0 {
        out.reached_target = out.utility >= goal;
        return out;
    }

    if cfg.lazy {
        lazy_loop(obj, cfg, goal, scratch, &mut out);
    } else {
        eager_loop(obj, cfg, goal, scratch, &mut out);
    }
    let mode = if cfg.lazy {
        "submodular.greedy.lazy.iterations"
    } else {
        "submodular.greedy.eager.iterations"
    };
    sched_obs::counter_add(mode, out.trace.len() as u64);
    sched_obs::counter_add("submodular.greedy.iterations", out.trace.len() as u64);
    sched_obs::counter_add("submodular.greedy.evaluations", out.evaluations as u64);
    out
}

/// Clamped gain: `min{x, F(S∪Sᵢ)} − F(S)` given the raw gain.
#[inline]
fn clamp_gain(raw: f64, current: f64, target: f64) -> f64 {
    raw.min(target - current).max(0.0)
}

fn eager_loop<O: BudgetedObjective>(
    obj: &mut O,
    cfg: GreedyConfig,
    goal: f64,
    scratch: &mut O::Scratch,
    out: &mut GreedyOutcome,
) {
    let m = obj.num_subsets();
    let mut gains: Vec<f64> = Vec::new();
    // Runner-up tracking exists only for the decision log; the untraced
    // fold below stays exactly the seed-shaped single-argmax pass.
    let traced = sched_obs::trace::enabled();
    while out.utility < goal {
        let cur = out.utility;
        obj.scan_gains(cfg.parallel, scratch, &mut gains);
        let obj_ref: &O = obj;
        let mut best = (f64::NEG_INFINITY, 0.0, usize::MAX);
        let mut second = (f64::NEG_INFINITY, 0.0, usize::MAX);
        if traced {
            for (i, &raw) in gains.iter().enumerate() {
                let g = clamp_gain(raw, cur, cfg.target);
                let cand = (g / obj_ref.cost(i), g, i);
                let next = better(best, cand, obj_ref);
                // whichever of {best, cand} lost competes for second place
                let loser = if next.2 == cand.2 { best } else { cand };
                second = better(second, loser, obj_ref);
                best = next;
            }
        } else {
            for (i, &raw) in gains.iter().enumerate() {
                let g = clamp_gain(raw, cur, cfg.target);
                best = better(best, (g / obj_ref.cost(i), g, i), obj_ref);
            }
        }
        out.evaluations += m;
        let (_, gain, idx) = best;
        if idx == usize::MAX || gain <= 0.0 {
            break; // stalled
        }
        let runner_up = (second.2 != usize::MAX).then_some((second.2, second.0, second.1));
        commit_pick(
            obj,
            cfg,
            idx,
            out,
            PickTrace {
                runner_up,
                reevals: 0,
            },
        );
    }
    out.reached_target = out.utility >= goal;
}

/// Deterministic argmax: higher ratio wins; ties broken by lower cost, then
/// lower index — associative, so safe as a parallel reduction.
#[inline]
fn better<O: BudgetedObjective>(
    a: (f64, f64, usize),
    b: (f64, f64, usize),
    obj: &O,
) -> (f64, f64, usize) {
    if b.2 == usize::MAX {
        return a;
    }
    if a.2 == usize::MAX {
        return b;
    }
    match a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal) {
        Ordering::Less => b,
        Ordering::Greater => a,
        Ordering::Equal => {
            let (ca, cb) = (obj.cost(a.2), obj.cost(b.2));
            match ca.partial_cmp(&cb).unwrap_or(Ordering::Equal) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if a.2 <= b.2 {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    ratio: f64,
    cost: f64,
    idx: usize,
    round: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap by ratio; ties -> cheaper first, then lower index
        self.ratio
            .partial_cmp(&other.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| {
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(Ordering::Equal)
            })
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn lazy_loop<O: BudgetedObjective>(
    obj: &mut O,
    cfg: GreedyConfig,
    goal: f64,
    scratch: &mut O::Scratch,
    out: &mut GreedyOutcome,
) {
    let m = obj.num_subsets();
    let mut round = 0usize;
    let cur0 = out.utility;

    // Initial evaluation of every candidate in one structured scan
    // (optionally parallel) — on run-structured objectives this is O(m)
    // oracle work instead of O(m · |T|).
    let mut initial: Vec<f64> = Vec::new();
    obj.scan_gains(cfg.parallel, scratch, &mut initial);
    out.evaluations += m;

    let mut heap: BinaryHeap<HeapEntry> = initial
        .into_iter()
        .enumerate()
        .map(|(idx, raw)| {
            let cost = obj.cost(idx);
            HeapEntry {
                ratio: clamp_gain(raw, cur0, cfg.target) / cost,
                cost,
                idx,
                round: 0,
            }
        })
        .collect();

    // Re-evaluations since the last commit; reported in the decision log so
    // a trace shows how hard the lazy heap worked for each pick.
    let mut reevals_since_commit = 0u64;
    // The runner-up at a lazy commit is the next heap key: a *stale upper
    // bound* on the true second-best ratio, which is exactly the certificate
    // the lazy rule used to justify the pick.
    let runner_up_of = |heap: &BinaryHeap<HeapEntry>| {
        heap.peek()
            .map(|next| (next.idx, next.ratio, next.ratio * next.cost))
    };
    while out.utility < goal {
        let Some(top) = heap.pop() else { break };
        if top.ratio <= 0.0 {
            break; // every remaining candidate has zero clamped gain
        }
        if top.round == round {
            // fresh: this is the true argmax
            let trace = PickTrace {
                runner_up: runner_up_of(&heap),
                reevals: reevals_since_commit,
            };
            commit_pick(obj, cfg, top.idx, out, trace);
            reevals_since_commit = 0;
            round += 1;
        } else {
            // stale: re-evaluate against the current solution (cheap for
            // memo-clean candidates, one batched run pass otherwise)
            let g = clamp_gain(obj.gain(top.idx, scratch), out.utility, cfg.target);
            out.evaluations += 1;
            reevals_since_commit += 1;
            let ratio = g / top.cost;
            // Every other entry's true ratio is bounded above by its stale
            // heap key; if the refreshed ratio still strictly beats the next
            // key, this candidate is the unique argmax — commit directly
            // instead of cycling it through the heap.
            if g > 0.0 && heap.peek().is_none_or(|next| ratio > next.ratio) {
                let trace = PickTrace {
                    runner_up: runner_up_of(&heap),
                    reevals: reevals_since_commit,
                };
                commit_pick(obj, cfg, top.idx, out, trace);
                reevals_since_commit = 0;
                round += 1;
            } else {
                heap.push(HeapEntry {
                    ratio,
                    cost: top.cost,
                    idx: top.idx,
                    round,
                });
            }
        }
    }
    out.reached_target = out.utility >= goal;
}

/// Decision-log context for one committed pick. Populated only when a tracer
/// is ambiently installed; carrying it through [`commit_pick`] keeps the
/// event emission in one place without touching the pick loops' hot paths.
struct PickTrace {
    /// Runner-up candidate as `(idx, ratio, gain)`. Exact second-best in
    /// eager mode; the next (stale upper-bound) heap key in lazy mode.
    runner_up: Option<(usize, f64, f64)>,
    /// Lazy-heap re-evaluations spent since the previous commit.
    reevals: u64,
}

fn commit_pick<O: BudgetedObjective>(
    obj: &mut O,
    cfg: GreedyConfig,
    idx: usize,
    out: &mut GreedyOutcome,
    trace: PickTrace,
) {
    let before = out.utility;
    let raw = obj.commit(idx);
    let cost = obj.cost(idx);
    out.utility = obj.current();
    debug_assert!((out.utility - (before + raw)).abs() < 1e-6);
    out.total_cost += cost;
    out.chosen.push(idx);
    let gain = clamp_gain(raw, before, cfg.target);
    out.trace.push(IterRecord {
        chosen: idx,
        gain,
        cost,
        utility_after: out.utility,
    });
    if sched_obs::trace::enabled() {
        let mut args: Vec<(&'static str, sched_obs::trace::ArgValue)> = vec![
            ("iter", (out.chosen.len() as u64 - 1).into()),
            ("chosen", idx.into()),
            ("gain", gain.into()),
            ("cost", cost.into()),
            ("ratio", (gain / cost).into()),
            ("utility_after", out.utility.into()),
            ("remaining", (cfg.target - out.utility).max(0.0).into()),
            ("reevals", trace.reevals.into()),
        ];
        if let Some((ru_idx, ru_ratio, ru_gain)) = trace.runner_up {
            args.push(("runner_up", ru_idx.into()));
            args.push(("runner_up_ratio", ru_ratio.into()));
            args.push(("runner_up_gain", ru_gain.into()));
        }
        sched_obs::trace::instant("submodular.greedy.pick", args);
    }
}

/// [`BudgetedObjective`] over an explicit set system: allowable subsets given
/// as id lists, utility given by any [`SetFn`] evaluated on the union bitset.
pub struct SetSystemObjective<'f, F: SetFn> {
    f: &'f F,
    subsets: Vec<Vec<u32>>,
    costs: Vec<f64>,
    union: BitSet,
    current: f64,
}

impl<'f, F: SetFn> SetSystemObjective<'f, F> {
    /// Creates the objective with solution `S = ∅`.
    ///
    /// # Panics
    /// Panics if lengths mismatch, ids exceed the ground set, or costs are
    /// not strictly positive.
    pub fn new(f: &'f F, subsets: Vec<Vec<u32>>, costs: Vec<f64>) -> Self {
        assert_eq!(subsets.len(), costs.len());
        let n = f.ground_size();
        for s in &subsets {
            for &e in s {
                assert!(
                    (e as usize) < n,
                    "element {e} outside ground set of size {n}"
                );
            }
        }
        let union = BitSet::new(n);
        let current = f.eval(&union);
        Self {
            f,
            subsets,
            costs,
            union,
            current,
        }
    }

    /// Current union of committed subsets.
    pub fn union(&self) -> &BitSet {
        &self.union
    }

    /// The allowable subsets.
    pub fn subsets(&self) -> &[Vec<u32>] {
        &self.subsets
    }
}

/// Scratch for [`SetSystemObjective`]: a reusable bitset for `S ∪ Sᵢ`.
#[derive(Default)]
pub struct SetSystemScratch {
    tmp: Option<BitSet>,
}

impl<F: SetFn> BudgetedObjective for SetSystemObjective<'_, F> {
    type Scratch = SetSystemScratch;

    fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    fn current(&self) -> f64 {
        self.current
    }

    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64 {
        let n = self.f.ground_size();
        let tmp = scratch.tmp.get_or_insert_with(|| BitSet::new(n));
        if tmp.capacity() != n {
            *tmp = BitSet::new(n);
        }
        tmp.copy_from(&self.union);
        for &e in &self.subsets[i] {
            tmp.insert(e);
        }
        self.f.eval(tmp) - self.current
    }

    fn commit(&mut self, i: usize) -> f64 {
        for &e in &self.subsets[i] {
            self.union.insert(e);
        }
        let new = self.f.eval(&self.union);
        let gain = new - self.current;
        self.current = new;
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::CoverageFn;

    fn cover_instance() -> (CoverageFn, Vec<Vec<u32>>, Vec<f64>) {
        // universe {0..5}; ground elements = universe items themselves
        // (identity coverage); allowable subsets pick groups of items.
        let f = CoverageFn::unweighted(6, (0..6).map(|i| vec![i as u32]).collect());
        let subsets = vec![
            vec![0, 1, 2],          // cost 3
            vec![3, 4],             // cost 2
            vec![5],                // cost 1
            vec![0, 1, 2, 3, 4, 5], // cost 10 (bad deal)
            vec![2, 3],             // cost 5 (bad deal)
        ];
        let costs = vec![3.0, 2.0, 1.0, 10.0, 5.0];
        (f, subsets, costs)
    }

    #[test]
    fn reaches_full_target() {
        let (f, subsets, costs) = cover_instance();
        let mut obj = SetSystemObjective::new(&f, subsets, costs);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(6.0, 1.0 / 7.0));
        assert!(out.reached_target);
        // (1-1/7)*6 = 36/7 > 5, so integral utility must be 6
        assert_eq!(out.utility, 6.0);
        assert_eq!(out.total_cost, 6.0); // picks subsets 0,1,2
        let mut ch = out.chosen.clone();
        ch.sort_unstable();
        assert_eq!(ch, vec![0, 1, 2]);
    }

    #[test]
    fn partial_target_stops_early() {
        let (f, subsets, costs) = cover_instance();
        let mut obj = SetSystemObjective::new(&f, subsets, costs);
        // target 6 with eps = 0.5 stops at utility >= 3
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(6.0, 0.5));
        assert!(out.reached_target);
        assert!(out.utility >= 3.0);
        assert!(out.total_cost <= 3.0 + 1e-12);
    }

    #[test]
    fn stalls_when_infeasible() {
        // universe has 3 items but subsets only ever cover item 0
        let f = CoverageFn::unweighted(3, vec![vec![0]]);
        let mut obj = SetSystemObjective::new(&f, vec![vec![0]], vec![1.0]);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(3.0, 0.1));
        assert!(!out.reached_target);
        assert_eq!(out.utility, 1.0);
    }

    #[test]
    fn lazy_matches_eager() {
        let (f, subsets, costs) = cover_instance();
        let run = |lazy: bool| {
            let mut obj = SetSystemObjective::new(&f, subsets.clone(), costs.clone());
            let mut cfg = GreedyConfig::new(6.0, 1.0 / 7.0);
            cfg.lazy = lazy;
            budgeted_greedy(&mut obj, cfg)
        };
        let eager = run(false);
        let lazy = run(true);
        assert_eq!(eager.chosen, lazy.chosen);
        assert_eq!(eager.utility, lazy.utility);
        assert_eq!(eager.total_cost, lazy.total_cost);
        assert!(
            lazy.evaluations <= eager.evaluations,
            "lazy should not evaluate more than eager"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (f, subsets, costs) = cover_instance();
        let run = |parallel: bool| {
            let mut obj = SetSystemObjective::new(&f, subsets.clone(), costs.clone());
            let mut cfg = GreedyConfig::new(6.0, 1.0 / 7.0);
            cfg.parallel = parallel;
            budgeted_greedy(&mut obj, cfg)
        };
        let seq = run(false);
        let par = run(true);
        assert_eq!(seq.chosen, par.chosen);
        assert_eq!(seq.total_cost, par.total_cost);
    }

    #[test]
    fn respects_cost_bound_on_planted_instances() {
        // plant an optimal cover of known cost B and verify cost <= 2*ceil(log2(1/eps))*B
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(10..40usize);
            // optimal solution: k disjoint subsets covering everything, each cost 1
            let k = rng.gen_range(2..6usize);
            let mut subsets: Vec<Vec<u32>> = vec![Vec::new(); k];
            for item in 0..n as u32 {
                subsets[rng.gen_range(0..k)].push(item);
            }
            subsets.retain(|s| !s.is_empty());
            let b = subsets.len() as f64;
            // plus noise subsets with random costs
            for _ in 0..20 {
                let len = rng.gen_range(1..=n / 2);
                let mut s: Vec<u32> = (0..n as u32).collect();
                for i in (1..s.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    s.swap(i, j);
                }
                s.truncate(len);
                subsets.push(s);
            }
            let m = subsets.len();
            let mut costs = vec![1.0; m];
            for c in costs.iter_mut().skip((b as usize).min(m)) {
                *c = rng.gen_range(0.5..4.0);
            }
            let f = CoverageFn::unweighted(n, (0..n).map(|i| vec![i as u32]).collect());
            // ground elements are items; allowable subsets as generated
            let eps = 0.125;
            let mut obj = SetSystemObjective::new(&f, subsets, costs);
            let out = budgeted_greedy(&mut obj, GreedyConfig::lazy(n as f64, eps));
            assert!(out.reached_target);
            let bound = 2.0 * (1.0 / eps).log2().ceil() * b;
            assert!(
                out.total_cost <= bound + 1e-9,
                "cost {} exceeds bound {bound} (B={b})",
                out.total_cost
            );
        }
    }

    #[test]
    fn trace_is_consistent() {
        let (f, subsets, costs) = cover_instance();
        let mut obj = SetSystemObjective::new(&f, subsets, costs);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(6.0, 1.0 / 7.0));
        assert_eq!(out.trace.len(), out.chosen.len());
        let mut cost = 0.0;
        for (r, &c) in out.trace.iter().zip(&out.chosen) {
            assert_eq!(r.chosen, c);
            cost += r.cost;
        }
        assert_eq!(cost, out.total_cost);
        assert_eq!(out.trace.last().unwrap().utility_after, out.utility);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        let f = CoverageFn::unweighted(1, vec![vec![0]]);
        let mut obj = SetSystemObjective::new(&f, vec![vec![0]], vec![1.0]);
        budgeted_greedy(&mut obj, GreedyConfig::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_panics() {
        let f = CoverageFn::unweighted(1, vec![vec![0]]);
        let mut obj = SetSystemObjective::new(&f, vec![vec![0]], vec![0.0]);
        budgeted_greedy(&mut obj, GreedyConfig::new(1.0, 0.5));
    }

    #[test]
    fn zero_target_returns_immediately() {
        let f = CoverageFn::unweighted(1, vec![vec![0]]);
        let mut obj = SetSystemObjective::new(&f, vec![vec![0]], vec![1.0]);
        let out = budgeted_greedy(&mut obj, GreedyConfig::new(0.0, 0.5));
        assert!(out.reached_target);
        assert!(out.chosen.is_empty());
        assert_eq!(out.total_cost, 0.0);
    }
}
