//! A library of set functions over a fixed ground set.
//!
//! Each function documents its monotonicity and submodularity; the metadata is
//! queryable at runtime ([`SetFn::is_monotone`], [`SetFn::is_submodular`])
//! because the secretary experiments deliberately exercise non-monotone
//! (directed cut) and non-submodular (bottleneck min, subadditive hidden-set)
//! utilities.
//!
//! Functions are evaluated on [`BitSet`] subsets of `0..ground_size()`.

use crate::bitset::BitSet;

/// A real-valued set function `f : 2^U → ℝ` with `f(∅) = 0` unless documented
/// otherwise.
pub trait SetFn: Sync {
    /// `|U|`.
    fn ground_size(&self) -> usize;

    /// Evaluates `f(set)`.
    fn eval(&self, set: &BitSet) -> f64;

    /// Marginal value `f(set ∪ {e}) − f(set)`. The default clones; structured
    /// implementations may override with something faster.
    fn marginal(&self, set: &BitSet, e: u32) -> f64 {
        if set.contains(e) {
            return 0.0;
        }
        let mut s = set.clone();
        s.insert(e);
        self.eval(&s) - self.eval(set)
    }

    /// Whether `f` is monotone non-decreasing (metadata, trusted by callers).
    fn is_monotone(&self) -> bool {
        true
    }

    /// Whether `f` is submodular (metadata, trusted by callers).
    fn is_submodular(&self) -> bool {
        true
    }
}

/// Weighted coverage: element `i` of the ground set is a *set* covering some
/// universe items; `f(S) = Σ_{u covered by S} weight(u)`. Monotone submodular.
#[derive(Clone, Debug)]
pub struct CoverageFn {
    universe: usize,
    covers: Vec<Vec<u32>>,
    weights: Vec<f64>,
}

impl CoverageFn {
    /// `covers[i]` lists universe items covered by ground element `i`;
    /// `weights[u]` is the (non-negative) weight of universe item `u`.
    ///
    /// # Panics
    /// Panics on negative weights or out-of-range universe items.
    pub fn new(universe: usize, covers: Vec<Vec<u32>>, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), universe);
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        for c in &covers {
            for &u in c {
                assert!((u as usize) < universe, "universe item {u} out of range");
            }
        }
        Self {
            universe,
            covers,
            weights,
        }
    }

    /// Unweighted coverage (all universe weights 1).
    pub fn unweighted(universe: usize, covers: Vec<Vec<u32>>) -> Self {
        Self::new(universe, covers, vec![1.0; universe])
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Items covered by ground element `i`.
    pub fn covers(&self, i: usize) -> &[u32] {
        &self.covers[i]
    }

    /// Weight of universe item `u`.
    pub fn weight(&self, u: u32) -> f64 {
        self.weights[u as usize]
    }
}

impl SetFn for CoverageFn {
    fn ground_size(&self) -> usize {
        self.covers.len()
    }

    fn eval(&self, set: &BitSet) -> f64 {
        let mut covered = BitSet::new(self.universe);
        for i in set.iter() {
            for &u in &self.covers[i as usize] {
                covered.insert(u);
            }
        }
        covered.iter().map(|u| self.weights[u as usize]).sum()
    }
}

/// Modular (additive) function: `f(S) = Σ_{i∈S} v_i`. Monotone (for `v ≥ 0`)
/// and trivially submodular.
#[derive(Clone, Debug)]
pub struct AdditiveFn {
    values: Vec<f64>,
}

impl AdditiveFn {
    /// Creates from per-element values (must be non-negative for the
    /// monotonicity metadata to be truthful).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(values.iter().all(|&v| v >= 0.0), "negative value");
        Self { values }
    }

    /// Per-element values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl SetFn for AdditiveFn {
    fn ground_size(&self) -> usize {
        self.values.len()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        set.iter().map(|i| self.values[i as usize]).sum()
    }
    fn marginal(&self, set: &BitSet, e: u32) -> f64 {
        if set.contains(e) {
            0.0
        } else {
            self.values[e as usize]
        }
    }
}

/// Budget-additive: `f(S) = min(budget, Σ_{i∈S} v_i)`. Monotone submodular.
#[derive(Clone, Debug)]
pub struct BudgetAdditiveFn {
    inner: AdditiveFn,
    budget: f64,
}

impl BudgetAdditiveFn {
    /// Creates with the given cap.
    pub fn new(values: Vec<f64>, budget: f64) -> Self {
        assert!(budget >= 0.0);
        Self {
            inner: AdditiveFn::new(values),
            budget,
        }
    }
}

impl SetFn for BudgetAdditiveFn {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        self.inner.eval(set).min(self.budget)
    }
}

/// Facility location: `f(S) = Σ_c max_{i∈S} w[c][i]` over clients `c`
/// (0 when `S = ∅`). Monotone submodular for `w ≥ 0`.
#[derive(Clone, Debug)]
pub struct FacilityLocationFn {
    /// `w[c][i]`: affinity of client `c` for facility `i`.
    w: Vec<Vec<f64>>,
    ground: usize,
}

impl FacilityLocationFn {
    /// `w[c]` must all have length `ground`.
    pub fn new(ground: usize, w: Vec<Vec<f64>>) -> Self {
        for row in &w {
            assert_eq!(row.len(), ground, "affinity row length mismatch");
            assert!(row.iter().all(|&x| x >= 0.0), "negative affinity");
        }
        Self { w, ground }
    }
}

impl SetFn for FacilityLocationFn {
    fn ground_size(&self) -> usize {
        self.ground
    }
    fn eval(&self, set: &BitSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        self.w
            .iter()
            .map(|row| set.iter().map(|i| row[i as usize]).fold(0.0, f64::max))
            .sum()
    }
}

/// Directed cut: `f(S) = Σ` of weights of arcs `(u, v)` with `u ∈ S`,
/// `v ∉ S`. Submodular but **non-monotone**; the canonical hard case for
/// Algorithm 2 (non-monotone submodular secretary).
#[derive(Clone, Debug)]
pub struct DirectedCutFn {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl DirectedCutFn {
    /// Creates from a weighted arc list over vertices `0..n`.
    pub fn new(n: usize, arcs: Vec<(u32, u32, f64)>) -> Self {
        for &(u, v, w) in &arcs {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc endpoint out of range"
            );
            assert!(w >= 0.0, "negative arc weight");
        }
        Self { n, arcs }
    }
}

impl SetFn for DirectedCutFn {
    fn ground_size(&self) -> usize {
        self.n
    }
    fn eval(&self, set: &BitSet) -> f64 {
        self.arcs
            .iter()
            .filter(|&&(u, v, _)| set.contains(u) && !set.contains(v))
            .map(|&(_, _, w)| w)
            .sum()
    }
    fn is_monotone(&self) -> bool {
        false
    }
}

/// Bottleneck: `f(S) = min_{i∈S} v_i` (0 for the empty set). **Neither
/// monotone nor submodular** — it models the slowest-member utility of
/// Section 3.6 and must only be used with algorithms documented to accept it.
#[derive(Clone, Debug)]
pub struct MinFn {
    values: Vec<f64>,
}

impl MinFn {
    /// Creates from per-element efficiencies.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }
}

impl SetFn for MinFn {
    fn ground_size(&self) -> usize {
        self.values.len()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        set.iter()
            .map(|i| self.values[i as usize])
            .fold(f64::INFINITY, f64::min)
    }
    fn is_monotone(&self) -> bool {
        false
    }
    fn is_submodular(&self) -> bool {
        false
    }
}

/// Best-single-element: `f(S) = max_{i∈S} v_i` (0 for the empty set).
/// Monotone submodular; the multiple-choice secretary classic.
#[derive(Clone, Debug)]
pub struct MaxFn {
    values: Vec<f64>,
}

impl MaxFn {
    /// Creates from per-element values (non-negative).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(values.iter().all(|&v| v >= 0.0));
        Self { values }
    }
}

impl SetFn for MaxFn {
    fn ground_size(&self) -> usize {
        self.values.len()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        set.iter()
            .map(|i| self.values[i as usize])
            .fold(0.0, f64::max)
    }
}

/// Exhaustively verifies submodularity of `f` on every pair `(A ⊆ B, v)` for
/// tiny ground sets (≤ ~14 elements). Intended for tests.
pub fn check_submodular_exhaustive(f: &dyn SetFn) -> Result<(), String> {
    let n = f.ground_size();
    assert!(
        n <= 14,
        "exhaustive check is exponential; use small ground sets"
    );
    let sets: Vec<BitSet> = (0u32..(1 << n))
        .map(|mask| BitSet::from_iter(n, (0..n as u32).filter(|i| mask >> i & 1 == 1)))
        .collect();
    let vals: Vec<f64> = sets.iter().map(|s| f.eval(s)).collect();
    for (ma, a) in sets.iter().enumerate() {
        for (mb, b) in sets.iter().enumerate() {
            if !a.is_subset(b) {
                continue;
            }
            for v in 0..n as u32 {
                if b.contains(v) {
                    continue;
                }
                let mav = ma | (1usize << v);
                let mbv = mb | (1usize << v);
                let ga = vals[mav] - vals[ma];
                let gb = vals[mbv] - vals[mb];
                if ga < gb - 1e-9 {
                    return Err(format!(
                        "submodularity violated: A mask {ma:#b}, B mask {mb:#b}, v={v}: {ga} < {gb}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Exhaustively verifies monotonicity on tiny ground sets. Intended for tests.
pub fn check_monotone_exhaustive(f: &dyn SetFn) -> Result<(), String> {
    let n = f.ground_size();
    assert!(n <= 14);
    let sets: Vec<BitSet> = (0u32..(1 << n))
        .map(|mask| BitSet::from_iter(n, (0..n as u32).filter(|i| mask >> i & 1 == 1)))
        .collect();
    let vals: Vec<f64> = sets.iter().map(|s| f.eval(s)).collect();
    for (m, s) in sets.iter().enumerate() {
        for v in 0..n as u32 {
            if s.contains(v) {
                continue;
            }
            let mv = m | (1usize << v);
            if vals[mv] < vals[m] - 1e-9 {
                return Err(format!("monotonicity violated at mask {m:#b} + {v}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_basic() {
        // sets: {0,1}, {1,2}, {3}
        let f = CoverageFn::unweighted(4, vec![vec![0, 1], vec![1, 2], vec![3]]);
        assert_eq!(f.eval(&BitSet::new(3)), 0.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0])), 2.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1, 2])), 4.0);
        assert_eq!(f.marginal(&BitSet::from_iter(3, [0]), 1), 1.0);
        assert_eq!(f.marginal(&BitSet::from_iter(3, [0]), 0), 0.0);
    }

    #[test]
    fn coverage_weighted() {
        let f = CoverageFn::new(2, vec![vec![0], vec![0, 1]], vec![5.0, 3.0]);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0])), 5.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [1])), 8.0);
    }

    #[test]
    fn coverage_is_monotone_submodular() {
        let f = CoverageFn::unweighted(5, vec![vec![0, 1], vec![1, 2, 3], vec![4], vec![0, 4]]);
        check_monotone_exhaustive(&f).unwrap();
        check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn additive_is_modular() {
        let f = AdditiveFn::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 2])), 4.0);
        check_monotone_exhaustive(&f).unwrap();
        check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn budget_additive_caps() {
        let f = BudgetAdditiveFn::new(vec![4.0, 4.0], 5.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0])), 4.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0, 1])), 5.0);
        check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn facility_location() {
        let f = FacilityLocationFn::new(2, vec![vec![1.0, 3.0], vec![2.0, 0.0]]);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [1])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0, 1])), 5.0);
        check_monotone_exhaustive(&f).unwrap();
        check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn directed_cut_nonmonotone_but_submodular() {
        let f = DirectedCutFn::new(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 1.5)]);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0])), 2.5);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1])), 3.5);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1, 2])), 0.0);
        assert!(!f.is_monotone());
        check_submodular_exhaustive(&f).unwrap();
        assert!(check_monotone_exhaustive(&f).is_err());
    }

    #[test]
    fn min_fn_is_neither() {
        let f = MinFn::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(f.eval(&BitSet::new(3)), 0.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1])), 1.0);
        assert!(!f.is_monotone());
        assert!(!f.is_submodular());
        assert!(check_monotone_exhaustive(&f).is_err());
    }

    #[test]
    fn max_fn_submodular() {
        let f = MaxFn::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(f.eval(&BitSet::from_iter(3, [1, 2])), 2.0);
        check_monotone_exhaustive(&f).unwrap();
        check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn default_marginal_matches_eval_difference() {
        let f = CoverageFn::unweighted(4, vec![vec![0, 1], vec![1, 2], vec![3], vec![0, 3]]);
        let s = BitSet::from_iter(4, [0]);
        for e in 0..4u32 {
            let mut se = s.clone();
            se.insert(e);
            assert_eq!(f.marginal(&s, e), f.eval(&se) - f.eval(&s));
        }
    }
}
