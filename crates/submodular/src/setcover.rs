//! Set Cover and Max-k-Cover as special cases of budgeted submodular
//! maximization.
//!
//! The paper (§2.1) observes that the Lemma 2.1.2 greedy generalizes the
//! classical Set Cover greedy: running it with target `x = n` (the universe
//! size) and `ε < 1/n` recovers a full cover of cost `O(B log n)`; the
//! classical `H_n` analysis gives cost ≤ `(ln n + 1)·OPT` for the same picks
//! under linear costs. This module packages both views plus the Max-k-Cover
//! greedy with its `(1 − 1/e)` guarantee — all reused by the hardness
//! experiments (Appendix .1 reductions) and the secretary workloads.

use crate::budgeted::{budgeted_greedy, GreedyConfig, GreedyOutcome, SetSystemObjective};
use crate::functions::{CoverageFn, SetFn};
use crate::BitSet;

/// A weighted Set Cover instance: universe `0..n`, sets with positive costs.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Universe size `n`.
    pub universe: usize,
    /// The sets.
    pub sets: Vec<Vec<u32>>,
    /// Positive per-set costs.
    pub costs: Vec<f64>,
}

impl SetCoverInstance {
    /// Creates an instance with unit costs.
    pub fn unit_costs(universe: usize, sets: Vec<Vec<u32>>) -> Self {
        let costs = vec![1.0; sets.len()];
        Self {
            universe,
            sets,
            costs,
        }
    }

    /// Whether the union of all sets covers the universe.
    pub fn is_coverable(&self) -> bool {
        let mut cov = BitSet::new(self.universe);
        for s in &self.sets {
            for &e in s {
                cov.insert(e);
            }
        }
        cov.count() == self.universe
    }

    /// `H_n = 1 + 1/2 + … + 1/n`, the classical greedy guarantee factor.
    pub fn harmonic_bound(&self) -> f64 {
        (1..=self.universe).map(|i| 1.0 / i as f64).sum()
    }
}

/// Result of the Set Cover greedy.
#[derive(Clone, Debug)]
pub struct SetCoverSolution {
    /// Chosen set indices in pick order.
    pub chosen: Vec<usize>,
    /// Total cost.
    pub cost: f64,
    /// Number of universe items covered.
    pub covered: usize,
    /// Whether the whole universe was covered.
    pub complete: bool,
    /// The underlying greedy outcome (trace, evaluation counts).
    pub outcome: GreedyOutcome,
}

/// Solves Set Cover with the Lemma 2.1.2 greedy (`x = n`, `ε = 1/(n+1)`), as
/// the paper prescribes. Under linear costs the picks coincide with the
/// classical greedy, so cost ≤ `H_n · OPT`.
pub fn greedy_set_cover(inst: &SetCoverInstance) -> SetCoverSolution {
    let n = inst.universe;
    let f = CoverageFn::unweighted(n, (0..n).map(|i| vec![i as u32]).collect());
    // Ground elements are universe items; allowable subsets are the sets.
    let mut obj = SetSystemObjective::new(&f, inst.sets.clone(), inst.costs.clone());
    let eps = 1.0 / (n as f64 + 1.0);
    let out = budgeted_greedy(&mut obj, GreedyConfig::lazy(n as f64, eps));
    // Integral utility: (1 - 1/(n+1))·n > n-1 forces utility == n on success.
    let covered = out.utility.round() as usize;
    SetCoverSolution {
        chosen: out.chosen.clone(),
        cost: out.total_cost,
        covered,
        complete: covered == n,
        outcome: out,
    }
}

/// Max-k-Cover: choose at most `k` sets maximizing coverage. The classical
/// greedy achieves `(1 − 1/e)·OPT` (Nemhauser et al.; cited as [35, 41] in
/// the paper). Works for any monotone submodular `f`, not just coverage.
pub fn greedy_max_cover<F: SetFn>(f: &F, subsets: &[Vec<u32>], k: usize) -> (Vec<usize>, f64) {
    let n = f.ground_size();
    let mut union = BitSet::new(n);
    let mut current = f.eval(&union);
    let mut chosen = Vec::with_capacity(k);
    let mut tmp = BitSet::new(n);
    for _ in 0..k.min(subsets.len()) {
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (i, s) in subsets.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            tmp.copy_from(&union);
            for &e in s {
                tmp.insert(e);
            }
            let gain = f.eval(&tmp) - current;
            if gain > best.0 || (gain == best.0 && i < best.1) {
                best = (gain, i);
            }
        }
        let (gain, idx) = best;
        if idx == usize::MAX || gain <= 0.0 {
            break;
        }
        for &e in &subsets[idx] {
            union.insert(e);
        }
        current += gain;
        chosen.push(idx);
    }
    (chosen, current)
}

/// Exact minimum-cost set cover by exhaustive subset search. Exponential in
/// the number of sets — strictly for small test/experiment instances.
///
/// Returns `None` if the instance is not coverable.
pub fn exact_set_cover(inst: &SetCoverInstance) -> Option<(Vec<usize>, f64)> {
    let m = inst.sets.len();
    assert!(m <= 24, "exact set cover is exponential; m={m} too large");
    let full: u64 = if inst.universe == 64 {
        u64::MAX
    } else {
        (1u64 << inst.universe) - 1
    };
    assert!(
        inst.universe <= 64,
        "exact set cover supports universes up to 64"
    );
    let masks: Vec<u64> = inst
        .sets
        .iter()
        .map(|s| s.iter().fold(0u64, |m, &e| m | (1 << e)))
        .collect();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for pick in 0u32..(1 << m) {
        let mut cov = 0u64;
        let mut cost = 0.0;
        for (i, &mask) in masks.iter().enumerate() {
            if pick >> i & 1 == 1 {
                cov |= mask;
                cost += inst.costs[i];
            }
        }
        if cov == full && best.as_ref().is_none_or(|(_, c)| cost < *c) {
            let chosen = (0..m).filter(|&i| pick >> i & 1 == 1).collect();
            best = Some((chosen, cost));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_simple_instance() {
        let inst = SetCoverInstance::unit_costs(4, vec![vec![0, 1], vec![2], vec![3], vec![2, 3]]);
        let sol = greedy_set_cover(&inst);
        assert!(sol.complete);
        assert_eq!(sol.covered, 4);
        // optimal: {0,1} + {2,3} = cost 2; greedy should find it here
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn respects_harmonic_bound_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(4..12usize);
            let m = rng.gen_range(3..10usize);
            let mut sets: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            // guarantee coverability
            sets.push((0..n as u32).collect());
            let costs: Vec<f64> = (0..sets.len())
                .map(|_| rng.gen_range(1..5) as f64)
                .collect();
            let inst = SetCoverInstance {
                universe: n,
                sets,
                costs,
            };
            let sol = greedy_set_cover(&inst);
            assert!(sol.complete);
            let (_, opt) = exact_set_cover(&inst).unwrap();
            assert!(
                sol.cost <= (inst.harmonic_bound() + 1.0) * opt + 1e-9,
                "greedy {} vs bound {} (opt {opt})",
                sol.cost,
                (inst.harmonic_bound() + 1.0) * opt
            );
        }
    }

    #[test]
    fn incomplete_when_uncoverable() {
        let inst = SetCoverInstance::unit_costs(3, vec![vec![0], vec![1]]);
        assert!(!inst.is_coverable());
        let sol = greedy_set_cover(&inst);
        assert!(!sol.complete);
        assert_eq!(sol.covered, 2);
    }

    #[test]
    fn max_cover_respects_k() {
        let f = CoverageFn::unweighted(6, (0..6).map(|i| vec![i as u32]).collect());
        let subsets = vec![vec![0, 1, 2], vec![2, 3], vec![4, 5], vec![0, 5]];
        let (chosen, val) = greedy_max_cover(&f, &subsets, 2);
        assert_eq!(chosen.len(), 2);
        assert_eq!(val, 5.0); // {0,1,2} + {4,5}
        assert_eq!(chosen, vec![0, 2]);
    }

    #[test]
    fn max_cover_one_minus_inv_e_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.gen_range(5..12usize);
            let m = rng.gen_range(3..8usize);
            let k = rng.gen_range(1..=m.min(4));
            let subsets: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let f = CoverageFn::unweighted(n, (0..n).map(|i| vec![i as u32]).collect());
            let (_, greedy_val) = greedy_max_cover(&f, &subsets, k);
            // brute-force optimum over k-subsets
            let mut opt = 0.0f64;
            let idx: Vec<usize> = (0..m).collect();
            fn combos(idx: &[usize], k: usize) -> Vec<Vec<usize>> {
                if k == 0 {
                    return vec![vec![]];
                }
                if idx.len() < k {
                    return vec![];
                }
                let mut out = combos(&idx[1..], k - 1)
                    .into_iter()
                    .map(|mut c| {
                        c.insert(0, idx[0]);
                        c
                    })
                    .collect::<Vec<_>>();
                out.extend(combos(&idx[1..], k));
                out
            }
            for c in combos(&idx, k) {
                let mut u = BitSet::new(n);
                for &i in &c {
                    for &e in &subsets[i] {
                        u.insert(e);
                    }
                }
                opt = opt.max(f.eval(&u));
            }
            assert!(
                greedy_val >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
                "greedy {greedy_val} below (1-1/e)*{opt}"
            );
        }
    }

    #[test]
    fn exact_set_cover_finds_optimum() {
        let inst = SetCoverInstance {
            universe: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 1, 2, 3]],
            costs: vec![1.0, 1.0, 1.0, 2.5],
        };
        let (chosen, cost) = exact_set_cover(&inst).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(chosen, vec![0, 2]);
    }

    #[test]
    fn exact_set_cover_none_when_uncoverable() {
        let inst = SetCoverInstance::unit_costs(2, vec![vec![0]]);
        assert!(exact_set_cover(&inst).is_none());
    }
}
