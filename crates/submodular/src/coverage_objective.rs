//! Incremental coverage objective: a [`BudgetedObjective`] specialized to
//! weighted coverage utilities with `O(touched)` marginal gains instead of
//! full re-evaluation.
//!
//! The generic [`crate::SetSystemObjective`] recomputes `F(S ∪ Sᵢ)` from
//! scratch per gain query; for coverage that is `O(|union| · avg-cover)`.
//! This objective maintains the covered-universe incrementally and answers a
//! gain query in time proportional to the candidate subset's own footprint —
//! the same trick the matching oracle plays for the scheduling reduction,
//! here for the Set-Cover-shaped workloads. Used by the greedy ablation
//! benches; equivalence with the generic objective is tested exhaustively.

use crate::budgeted::BudgetedObjective;
use crate::functions::{CoverageFn, SetFn};

/// Incremental [`BudgetedObjective`] over a [`CoverageFn`] and an explicit
/// family of allowable subsets (of ground elements).
pub struct CoverageObjective<'f> {
    f: &'f CoverageFn,
    subsets: Vec<Vec<u32>>,
    costs: Vec<f64>,
    weights: Vec<f64>,
    in_union: Vec<bool>,
    covered: Vec<bool>,
    current: f64,
}

/// Scratch for gain queries: epoch-tagged marks over universe items, so a
/// query touches only the items the candidate covers.
#[derive(Default)]
pub struct CoverageScratch {
    epoch: u32,
    mark: Vec<u32>,
}

impl<'f> CoverageObjective<'f> {
    /// Creates the objective with solution `S = ∅`.
    ///
    /// # Panics
    /// Panics on length mismatches, out-of-range elements, or non-positive
    /// costs (same contract as [`crate::SetSystemObjective`]).
    pub fn new(f: &'f CoverageFn, subsets: Vec<Vec<u32>>, costs: Vec<f64>) -> Self {
        assert_eq!(subsets.len(), costs.len());
        let n = f.ground_size();
        for s in &subsets {
            for &e in s {
                assert!((e as usize) < n, "element {e} outside ground set");
            }
        }
        let universe = f.universe();
        let weights = (0..universe)
            .map(|u| {
                // recover weights through eval on singleton covers is clumsy;
                // CoverageFn exposes covers() but not weights, so rebuild via
                // the public API: weight(u) = F({elem covering u}) diffs would
                // be ambiguous. Instead CoverageFn guarantees weights(); see
                // accessor below.
                f.weight(u as u32)
            })
            .collect();
        Self {
            f,
            subsets,
            costs,
            weights,
            in_union: vec![false; n],
            covered: vec![false; universe],
            current: 0.0,
        }
    }

    /// Current covered-weight.
    pub fn covered_weight(&self) -> f64 {
        self.current
    }
}

impl BudgetedObjective for CoverageObjective<'_> {
    type Scratch = CoverageScratch;

    fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    fn current(&self) -> f64 {
        self.current
    }

    fn gain(&self, i: usize, scratch: &mut Self::Scratch) -> f64 {
        if scratch.mark.len() != self.covered.len() {
            scratch.mark = vec![0; self.covered.len()];
            scratch.epoch = 0;
        }
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.mark.fill(0);
            scratch.epoch = 1;
        }
        let ep = scratch.epoch;
        let mut gain = 0.0;
        for &e in &self.subsets[i] {
            if self.in_union[e as usize] {
                continue;
            }
            for &u in self.f.covers(e as usize) {
                let u = u as usize;
                if !self.covered[u] && scratch.mark[u] != ep {
                    scratch.mark[u] = ep;
                    gain += self.weights[u];
                }
            }
        }
        gain
    }

    fn commit(&mut self, i: usize) -> f64 {
        let mut gain = 0.0;
        // clone indices to satisfy the borrow checker without unsafe
        let subset = self.subsets[i].clone();
        for e in subset {
            if self.in_union[e as usize] {
                continue;
            }
            self.in_union[e as usize] = true;
            for &u in self.f.covers(e as usize) {
                let u = u as usize;
                if !self.covered[u] {
                    self.covered[u] = true;
                    gain += self.weights[u];
                }
            }
        }
        self.current += gain;
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgeted::{budgeted_greedy, GreedyConfig, SetSystemObjective};
    use rand::{Rng, SeedableRng};

    fn random_instance(rng: &mut impl Rng) -> (CoverageFn, Vec<Vec<u32>>, Vec<f64>, f64) {
        let universe = rng.gen_range(5..30usize);
        let n = rng.gen_range(3..15usize);
        let covers: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..universe as u32).filter(|_| rng.gen_bool(0.3)).collect())
            .collect();
        let weights: Vec<f64> = (0..universe).map(|_| rng.gen_range(1..5) as f64).collect();
        let f = CoverageFn::new(universe, covers, weights.clone());
        let m = rng.gen_range(2..8usize);
        let subsets: Vec<Vec<u32>> = (0..m)
            .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect())
            .collect();
        let costs: Vec<f64> = (0..m).map(|_| rng.gen_range(1..5) as f64).collect();
        let total: f64 = weights.iter().sum();
        (f, subsets, costs, total)
    }

    #[test]
    fn matches_generic_objective_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        for _ in 0..40 {
            let (f, subsets, costs, total) = random_instance(&mut rng);
            let target = total * rng.gen_range(0.2..0.9);
            let eps = 0.25;

            let mut fast = CoverageObjective::new(&f, subsets.clone(), costs.clone());
            let fast_out = budgeted_greedy(&mut fast, GreedyConfig::new(target, eps));

            let mut slow = SetSystemObjective::new(&f, subsets, costs);
            let slow_out = budgeted_greedy(&mut slow, GreedyConfig::new(target, eps));

            assert_eq!(fast_out.chosen, slow_out.chosen, "pick sequences differ");
            assert_eq!(fast_out.utility, slow_out.utility);
            assert_eq!(fast_out.total_cost, slow_out.total_cost);
            assert_eq!(fast_out.reached_target, slow_out.reached_target);
        }
    }

    #[test]
    fn gain_consistent_with_commit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(405);
        for _ in 0..30 {
            let (f, subsets, costs, _) = random_instance(&mut rng);
            let m = subsets.len();
            let mut obj = CoverageObjective::new(&f, subsets, costs);
            let mut scratch = CoverageScratch::default();
            for _ in 0..m {
                let i = rng.gen_range(0..m);
                let predicted = obj.gain(i, &mut scratch);
                let again = obj.gain(i, &mut scratch);
                assert_eq!(predicted, again, "gain not idempotent");
                let realized = obj.commit(i);
                assert_eq!(predicted, realized, "commit diverged from gain");
            }
        }
    }

    #[test]
    fn duplicate_elements_within_subset_counted_once() {
        let f = CoverageFn::unweighted(2, vec![vec![0], vec![0], vec![1]]);
        // subset contains elements 0 and 1, both covering item 0
        let mut obj = CoverageObjective::new(&f, vec![vec![0, 1]], vec![1.0]);
        let mut s = CoverageScratch::default();
        assert_eq!(obj.gain(0, &mut s), 1.0);
        assert_eq!(obj.commit(0), 1.0);
    }
}
