//! Dense fixed-capacity bitset over `u64` blocks.
//!
//! The canonical subset representation used by the set-function library and
//! the budgeted greedy. All bulk operations (`union_with`, `count`,
//! `intersection_count`) run a word at a time.

/// A set of `u32` element ids drawn from `0..capacity`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for element ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i as u32);
        }
        s
    }

    /// Builds a set from an iterator of element ids.
    pub fn from_iter(capacity: usize, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::new(capacity);
        for i in ids {
            s.insert(i);
        }
        s
    }

    /// Maximum id + 1 this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        assert!(
            (id as usize) < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        let (b, m) = (id as usize / 64, 1u64 << (id % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] |= m;
        !was
    }

    /// Removes `id`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        let (b, m) = (id as usize / 64, 1u64 << (id % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (b, m) = (id as usize / 64, 1u64 << (id % 64));
        (id as usize) < self.capacity && self.blocks[b] & m != 0
    }

    /// Number of elements.
    #[inline]
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Copies the contents of `other` into `self` (capacities must match).
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// Iterates over contained ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros();
                    b &= b - 1;
                    Some(bi as u32 * 64 + t)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(63));
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.contains(63));
        assert!(s.insert(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_order_and_roundtrip() {
        let ids = [0u32, 1, 63, 64, 65, 99];
        let s = BitSet::from_iter(100, ids.iter().copied());
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn union_intersect_difference() {
        let a = BitSet::from_iter(10, [1, 2, 3]);
        let b = BitSet::from_iter(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.intersection_count(&b), 1);
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_iter(10, [1, 2]);
        let b = BitSet::from_iter(10, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(BitSet::new(10).is_subset(&a));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = BitSet::new(5);
        a.union_with(&BitSet::new(6));
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = BitSet::from_iter(10, [1, 2]);
        let b = BitSet::from_iter(10, [7]);
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![7]);
    }
}
