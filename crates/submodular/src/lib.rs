//! Submodular set functions and budgeted submodular maximization.
//!
//! This crate implements Section 2.1 of Zadimoghaddam (2010): *submodular
//! maximization with budget constraints*. Given a ground set `U`, a family of
//! allowable subsets `S₁..S_m ⊆ U` with costs `C₁..C_m`, a monotone submodular
//! utility `F : 2^U → ℝ` and a target `x`, the bicriteria greedy of
//! Lemma 2.1.2 finds a collection with utility ≥ `(1−ε)x` and cost at most
//! `O(B·log(1/ε))` whenever some collection of cost `B` achieves utility `x`.
//!
//! The greedy is exposed through the [`budgeted::BudgetedObjective`] trait so
//! that it runs unchanged on top of very different oracles: explicit set
//! systems over bitsets ([`budgeted::SetSystemObjective`]), the bipartite
//! matching-rank oracles used by the scheduling reduction (implemented in the
//! `sched-core` crate), and Set Cover ([`setcover`]), which the paper notes is
//! the special case recovering the classical `ln n + 1` greedy.
//!
//! Modules:
//! * [`bitset`] — dense fixed-capacity bitset used as the canonical subset
//!   representation;
//! * [`functions`] — a library of set functions (coverage, facility location,
//!   budget-additive, cuts, …) with explicit monotonicity/submodularity
//!   metadata, shared with the secretary crate;
//! * [`budgeted`] — the Lemma 2.1.2 greedy (eager, lazy, and parallel
//!   candidate scans) plus iteration traces for the phase-structure
//!   experiments;
//! * [`setcover`] — Set Cover / Max-k-Cover adapters and the classical greedy
//!   guarantees.

pub mod bitset;
pub mod budgeted;
pub mod coverage_objective;
pub mod functions;
pub mod setcover;

pub use bitset::BitSet;
pub use budgeted::{
    budgeted_greedy, budgeted_greedy_with, BudgetedObjective, GreedyConfig, GreedyOutcome,
    IterRecord, SetSystemObjective,
};
pub use coverage_objective::{CoverageObjective, CoverageScratch};
pub use functions::SetFn;
