//! Offline, API-compatible subset of `serde_json` over the vendored serde
//! stub: [`to_string`], [`to_string_pretty`], and [`from_str`], backed by a
//! self-contained JSON printer and recursive-descent parser for
//! [`serde::Value`].

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("JSON cannot represent {n}")));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), indent, depth, out, |item, ind, d, o| {
                write_value(item, ind, d, o)
            })?;
        }
        Value::Object(pairs) => {
            out.push('{');
            write_items(pairs.iter(), indent, depth, out, |(k, val), ind, d, o| {
                write_string(k, o);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(val, ind, d, o)
            })?;
            out.push('}');
        }
    }
    Ok(())
}

fn write_seq<'a, I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = &'a Value>,
    F: Fn(&Value, Option<usize>, usize, &mut String) -> Result<(), Error>,
{
    out.push('[');
    write_items(items, indent, depth, out, |item, ind, d, o| {
        write_item(item, ind, d, o)
    })?;
    out.push(']');
    Ok(())
}

fn write_items<T, I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = T>,
    F: Fn(T, Option<usize>, usize, &mut String) -> Result<(), Error>,
{
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, indent, depth + 1, out)?;
        if i + 1 < n {
            out.push(',');
        } else if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error(format!("invalid number at offset {start}")))
    }

    /// Reads four hex digits starting at `at` (for `\u` escapes).
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error(format!("bad \\u escape at offset {at}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hex) {
                                // High surrogate: a low surrogate escape must
                                // follow (JSON encodes non-BMP chars as pairs).
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error(format!(
                                        "unpaired surrogate at offset {}",
                                        self.pos
                                    )));
                                }
                                let low = self.read_hex4(self.pos + 3)?;
                                self.pos += 6;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error(format!(
                                        "invalid low surrogate at offset {}",
                                        self.pos
                                    )));
                                }
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error(format!("bad \\u escape at offset {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("n".into(), Value::Num(14.0)),
            ("f".into(), Value::Num(0.5)),
            ("s".into(), Value::Str("a \"b\"\n".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Num(-3.25)]),
            ),
            ("o".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&TestWrap(v.clone())).unwrap();
        let parsed: TestWrap = from_str(&compact).unwrap();
        assert_eq!(parsed.0, v);
        let pretty = to_string_pretty(&TestWrap(v.clone())).unwrap();
        let parsed: TestWrap = from_str(&pretty).unwrap();
        assert_eq!(parsed.0, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&14.0f64).unwrap(), "14");
        assert_eq!(to_string(&14.5f64).unwrap(), "14.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // escaped surrogate pair + escaped BMP char, per the JSON spec
        let json = "\"\\ud83d\\ude00 ok \\u00e9\"";
        let s: String = from_str(json).unwrap();
        assert_eq!(s, "\u{1F600} ok \u{e9}");
        // unpaired / malformed surrogates are rejected
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        // non-BMP chars round-trip (written raw, re-parsed)
        let json = to_string(&String::from("\u{1F600}")).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5 junk").is_err());
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }

    /// Raw-Value passthrough for tests.
    struct TestWrap(Value);

    impl serde::Serialize for TestWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for TestWrap {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(TestWrap(v.clone()))
        }
    }
}
