//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stub, implemented directly on `proc_macro` token trees (the build
//! environment has no crates.io access, hence no `syn`/`quote`).
//!
//! Supported shapes — exactly the ones this workspace derives:
//! * non-generic structs with named fields → JSON objects;
//! * non-generic enums whose variants all carry no data → JSON strings.
//!
//! Fields whose declared type is spelled `Option<...>` mirror upstream
//! serde's default handling: a missing JSON key deserializes as `None`
//! (present keys, including explicit `null`, go through `Option`'s own
//! `Deserialize`). All other fields are required.
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// Declared type is literally `Option<...>` — missing keys become
    /// `None` instead of a "missing field" error.
    optional: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Skips attributes (`#[...]`, covering doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' followed by a bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub: generic type `{name}` is not supported by the vendored serde derive"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde stub: `{name}` must be a brace-bodied struct or enum (tuple/unit \
                 shapes are not supported by the vendored serde derive)"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("serde stub: cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde stub: expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde stub: expected `:`, found {other:?}")),
        }
        // `Option<...>` fields tolerate missing JSON keys (upstream serde's
        // default behavior); detection is syntactic, on the spelled type.
        let optional =
            matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
        // Skip the type: consume until a top-level `,` (angle-bracket aware).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, optional });
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde stub: expected variant name, found {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "serde stub: enum variant `{variant}` carries data ({other:?}); only \
                     fieldless enums are supported by the vendored serde derive"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let (f, optional) = (&f.name, f.optional);
                    if optional {
                        // Missing key => None; present keys (incl. null) go
                        // through Option's own Deserialize.
                        format!(
                            "{f}: match v.field({f:?}) {{\n\
                                 ::core::result::Result::Ok(x) => \
                                     ::serde::Deserialize::from_value(x)?,\n\
                                 ::core::result::Result::Err(_) => \
                                     ::core::option::Option::None,\n\
                             }},"
                        )
                    } else {
                        format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::core::result::Result::Err(::serde::Error(\
                                     ::std::format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::core::result::Result::Err(::serde::Error(\
                                 ::std::format!(\
                                     \"expected string for enum {name}, found {{}}\", \
                                     other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
