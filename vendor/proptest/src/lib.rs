//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range / tuple / [`Just`] / [`collection::vec`] strategies,
//! `any::<bool>()`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-(test, draw) seed,
//! so a failure names the draw index that reproduces it exactly; inputs are
//! **not echoed** and failing cases are **not shrunk** (debugging niceties,
//! not part of any test's pass/fail contract — re-run the named draw to
//! recover the inputs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic source of randomness for strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform sample from a range (delegates to the vendored `rand`).
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A failed or rejected test case.
#[derive(Debug)]
pub struct TestCaseError {
    /// What went wrong (assertion message or rejected assumption).
    pub message: String,
    /// True when raised by `prop_assume!`: the inputs are redrawn rather
    /// than the case counting as a pass (mirrors upstream reject handling).
    pub rejected: bool,
}

impl TestCaseError {
    /// Assertion-failure constructor used by the `prop_assert*` macros.
    pub fn fail(message: String) -> Self {
        Self {
            message,
            rejected: false,
        }
    }

    /// Rejection constructor used by `prop_assume!`.
    pub fn reject(assumption: &str) -> Self {
        Self {
            message: format!("assumption not met: {assumption}"),
            rejected: true,
        }
    }
}

/// Generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: exact or a range.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-(test, case) seed.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    h.finish()
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)` block
/// runs `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // `prop_assume!` rejections redraw the inputs instead of
                // counting as passes; a reject budget keeps a vacuous
                // assumption from looping forever (as upstream proptest does).
                let max_rejects = cfg.cases.saturating_mul(16).max(256);
                let mut accepted = 0u32;
                let mut draws = 0u32;
                while accepted < cfg.cases {
                    let mut proptest_rng =
                        $crate::TestRng::from_seed($crate::case_seed(stringify!($name), draws));
                    draws += 1;
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(e) if e.rejected => {
                            if draws - accepted > max_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume rejections \
                                     ({} rejects for {} accepted cases): {}",
                                    stringify!($name), draws - accepted, accepted, e.message
                                );
                            }
                        }
                        ::core::result::Result::Err(e) => {
                            panic!(
                                "proptest {} failed at draw {}: {}",
                                stringify!($name), draws - 1, e.message
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition;
/// the runner redraws fresh inputs (bounded by a reject budget) so rejected
/// cases never count toward the requested number of passing cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..10).prop_flat_map(|a| (Just(a), a..a + 5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn flat_map_respects_dependency((a, b) in pair()) {
            prop_assert!(b >= a && b < a + 5, "b = {b} outside [{a}, {})", a + 5);
        }

        #[test]
        fn vec_sizes_in_range(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_redraws_until_satisfied(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            // reached only with inputs that satisfy the assumption
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "too many prop_assume rejections")]
    fn vacuous_assumption_panics_instead_of_passing() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            // not #[test]: expanded as a plain fn and invoked directly below
            #[allow(unused)]
            fn inner(n in 0u32..10) {
                prop_assume!(n > 100); // never satisfiable
                prop_assert!(false, "must be unreachable");
            }
        }
        inner();
    }

    proptest! {
        #[test]
        fn default_config_works(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }
}
