//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer and float ranges, [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] (xoshiro256** seeded via splitmix64).
//! Determinism per seed is the only contract the workspace relies on; the
//! stream differs from upstream `rand`'s StdRng, which is fine because every
//! caller seeds explicitly and only needs reproducibility, not a specific
//! stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start);
                // Rounding of start + u·(end−start) can land exactly on the
                // excluded upper bound; clamp to the largest value below it.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_sample!(f32, f64);

/// Distribution sampling (the slice of `rand_distr`'s surface the workspace
/// uses: exponential inter-arrival times and Poisson counts for the timed
/// arrival-trace generators).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// Types that can draw samples of `T` from an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a distribution with a bad parameter.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct ParamError(&'static str);

    impl std::fmt::Display for ParamError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(self.0)
        }
    }

    impl std::error::Error for ParamError {}

    /// Exponential distribution `Exp(λ)` — inter-arrival times of a Poisson
    /// process with rate `λ` (mean `1/λ`). Sampled by inversion:
    /// `-ln(1 - u) / λ` with `u` uniform in `[0, 1)`, so the sample stream
    /// is a deterministic function of the RNG stream (seedable and
    /// reproducible, which is all the trace generators need).
    #[derive(Clone, Copy, Debug)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// Rate must be finite and strictly positive.
        pub fn new(lambda: f64) -> Result<Self, ParamError> {
            if lambda > 0.0 && lambda.is_finite() {
                Ok(Self { lambda })
            } else {
                Err(ParamError("Exp rate must be finite and > 0"))
            }
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = unit_f64(rng.next_u64()); // in [0, 1): ln(1-u) is finite
            -(1.0 - u).ln() / self.lambda
        }
    }

    /// Poisson distribution with mean `λ`.
    ///
    /// Small means use Knuth's product-of-uniforms method (expected `λ + 1`
    /// RNG draws per sample). That method compares a running product of
    /// uniforms against `exp(−λ)`, which **underflows to zero** near
    /// `λ ≈ 745`: the comparison then never terminates normally and every
    /// sample burns the full iteration cap while returning a meaningless
    /// count. Above [`KNUTH_CUTOFF`] sampling therefore switches to the
    /// log-domain inversion of the arrival process — `N` is the number of
    /// unit-rate exponential inter-arrival gaps (`−ln(1−u)`, the same
    /// inversion [`Exp`] uses) that fit in `[0, λ)` — which involves no
    /// `exp(−λ)` at all and is exact for any mean. Both paths cap their
    /// loops at `10·λ + 100` iterations so a pathological RNG cannot hang
    /// the caller.
    #[derive(Clone, Copy, Debug)]
    pub struct Poisson {
        lambda: f64,
    }

    /// Largest mean still sampled by Knuth's product method; far below the
    /// `exp(−λ)` underflow point (~745) with margin. The cutoff only
    /// changes which exact sampler runs, not the distribution.
    const KNUTH_CUTOFF: f64 = 30.0;

    impl Poisson {
        /// Mean must be finite and strictly positive.
        pub fn new(lambda: f64) -> Result<Self, ParamError> {
            if lambda > 0.0 && lambda.is_finite() {
                Ok(Self { lambda })
            } else {
                Err(ParamError("Poisson mean must be finite and > 0"))
            }
        }
    }

    impl Distribution<u64> for Poisson {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let cap = (10.0 * self.lambda) as u64 + 100;
            if self.lambda <= KNUTH_CUTOFF {
                let limit = (-self.lambda).exp();
                let mut product = unit_f64(rng.next_u64());
                let mut count = 0u64;
                while product > limit && count < cap {
                    count += 1;
                    product *= unit_f64(rng.next_u64());
                }
                count
            } else {
                // inversion fallback: count unit-rate exponential
                // inter-arrival gaps fitting in [0, λ) — log-domain, so no
                // exp(−λ) underflow for large means
                let mut acc = 0.0f64;
                let mut count = 0u64;
                loop {
                    acc += -(1.0 - unit_f64(rng.next_u64())).ln();
                    if acc >= self.lambda || count >= cap {
                        break count;
                    }
                    count += 1;
                }
            }
        }
    }

    impl Distribution<f64> for Poisson {
        /// Upstream `rand_distr` returns floats from `Poisson`; mirror that
        /// for drop-in compatibility.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let n: u64 = Distribution::<u64>::sample(self, rng);
            n as f64
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, as upstream rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(2..=5u32);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.5..3.0f64);
            assert!((0.5..3.0).contains(&f));
            let i = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn float_half_open_range_excludes_upper_bound() {
        // 1 - 2^-25 and above round to 1.0f32 when cast; the clamp must keep
        // the sample strictly below the open bound for every bit pattern.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let x: f32 = rng.gen_range(0.0f32..1.0f32);
        assert!(x < 1.0, "got {x}");
        let y: f64 = rng.gen_range(2.0f64..3.0f64);
        assert!(y < 3.0, "got {y}");
        let z: f32 = rng.gen_range(-5.0f32..-4.0f32);
        assert!((-5.0..-4.0).contains(&z), "got {z}");
    }

    #[test]
    fn exponential_mean_and_determinism() {
        use crate::distributions::{Distribution, Exp};
        let exp = Exp::new(2.0).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x: f64 = exp.sample(&mut a);
            assert_eq!(x, exp.sample(&mut b), "not deterministic per seed");
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "Exp(2) mean {mean} far from 0.5");
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn poisson_mean_and_determinism() {
        use crate::distributions::{Distribution, Poisson};
        let poi = Poisson::new(3.0).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut sum = 0u64;
        for _ in 0..20_000 {
            let n: u64 = poi.sample(&mut a);
            let m: u64 = poi.sample(&mut b);
            assert_eq!(n, m, "not deterministic per seed");
            sum += n;
        }
        let mean = sum as f64 / 20_000.0;
        assert!(
            (mean - 3.0).abs() < 0.1,
            "Poisson(3) mean {mean} far from 3"
        );
        // float surface mirrors rand_distr
        let f: f64 = poi.sample(&mut a);
        assert_eq!(f, f.trunc());
        assert!(Poisson::new(-1.0).is_err());
    }

    /// Regression for the large-λ hazard: Knuth's product method compares
    /// against `exp(−λ)`, which underflows to 0 near λ ≈ 745 — before the
    /// inversion fallback, every sample at λ ≥ 700-ish spun to the
    /// iteration cap and returned garbage, so diurnal trace generation
    /// could effectively hang. The fallback must terminate promptly and
    /// keep the right mean and spread.
    #[test]
    fn poisson_large_lambda_inversion_fallback() {
        use crate::distributions::{Distribution, Poisson};
        for lambda in [700.0f64, 2000.0] {
            let poi = Poisson::new(lambda).unwrap();
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            let n = 2_000;
            let mut sum = 0u64;
            let mut sum_sq = 0.0f64;
            for _ in 0..n {
                let x: u64 = poi.sample(&mut a);
                assert_eq!(x, poi.sample(&mut b), "not deterministic per seed");
                sum += x;
                sum_sq += (x as f64) * (x as f64);
            }
            let mean = sum as f64 / n as f64;
            // mean sits within 5 standard errors (σ = sqrt(λ))
            let tol = 5.0 * lambda.sqrt() / (n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < tol,
                "Poisson({lambda}) mean {mean} off by more than {tol}"
            );
            // variance ≈ λ distinguishes a real Poisson from the capped
            // garbage the underflowing Knuth loop returned (≈ 10λ, var ≈ 0)
            let var = sum_sq / n as f64 - mean * mean;
            assert!(
                var > 0.5 * lambda && var < 2.0 * lambda,
                "Poisson({lambda}) variance {var} not near λ"
            );
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "biased: {hits}");
    }
}
