//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the bench-harness surface its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple best-of-N wall-clock measurement — enough to print
//! comparable numbers and to keep `cargo test` / `cargo bench` green without
//! the statistical machinery of real criterion.

use std::time::{Duration, Instant};

/// Opaque value barrier (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// When true (under `cargo test`), each bench body runs once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness-less bench binaries with `--test`;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        run_one(self.test_mode, &name, 10, &mut f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(
            self.criterion.test_mode,
            &name,
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (report separator).
    pub fn finish(self) {}
}

fn run_one(test_mode: bool, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: if test_mode { 1 } else { sample_size },
        best: Duration::MAX,
        timed: false,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode bench {name}: ok");
    } else if bencher.timed {
        println!("bench {name}: best of {sample_size}: {:?}", bencher.best);
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    best: Duration,
    timed: bool,
}

impl Bencher {
    /// Runs `routine` `samples` times, keeping the best wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.timed = true;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| x * 2);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
    }
}
