//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the adapters it actually calls: `into_par_iter`, `map`, `map_init`,
//! `reduce`, `sum`, and `collect`. Everything executes **sequentially** —
//! callers only rely on rayon for throughput, never for semantics, and every
//! parallel reduction in the workspace is associative and order-insensitive,
//! so the sequential fallback is observationally equivalent (and
//! deterministic). Swapping the real rayon back in is a one-line manifest
//! change.

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter};
}

/// Conversion into a (sequentially executing) "parallel" iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Mirrors `rayon::iter::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Sequential stand-in for rayon's `ParallelIterator`.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Mirrors `ParallelIterator::map`.
    pub fn map<U, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.map(f))
    }

    /// Mirrors `ParallelIterator::map_init`: one scratch value per worker —
    /// here, a single scratch value for the whole (sequential) pass.
    pub fn map_init<T, U, INIT, F>(self, init: INIT, mut f: F) -> ParIter<impl Iterator<Item = U>>
    where
        INIT: FnOnce() -> T,
        F: FnMut(&mut T, I::Item) -> U,
    {
        let mut scratch = init();
        ParIter(self.0.map(move |x| f(&mut scratch, x)))
    }

    /// Mirrors `ParallelIterator::filter`.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Mirrors rayon's `reduce(identity, op)` (not `Iterator::reduce`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Mirrors `ParallelIterator::sum`.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Mirrors `ParallelIterator::count`.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Mirrors `ParallelIterator::collect` (via `FromIterator`).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0..100u64)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100u64).map(|x| x * x).sum());
    }

    #[test]
    fn map_init_shares_scratch() {
        let out: Vec<u64> = (0..5u64)
            .into_par_iter()
            .map_init(
                || 10u64,
                |acc, x| {
                    *acc += x;
                    *acc
                },
            )
            .collect();
        assert_eq!(out, vec![10, 11, 13, 16, 20]);
    }

    #[test]
    fn sum_and_count() {
        let s: f64 = vec![1.0, 2.5].into_par_iter().sum();
        assert_eq!(s, 3.5);
        assert_eq!((0..7).into_par_iter().filter(|x| x % 2 == 0).count(), 4);
    }
}
