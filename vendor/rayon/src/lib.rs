//! Offline, API-compatible subset of `rayon` that **really fans out** over
//! `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the adapters it actually calls: `into_par_iter`, `map`, `map_init`,
//! `filter`, `reduce`, `sum`, `count`, and `collect`. Unlike the original
//! sequential shim, the transforming adapters now split their input into one
//! chunk per worker thread and execute the chunks concurrently under
//! `std::thread::scope`, preserving input order in the output. Closure bounds
//! (`Fn + Sync + Send`) mirror upstream rayon, so swapping the real rayon
//! back in remains a one-line manifest change.
//!
//! Differences from upstream that callers may observe:
//!
//! * adapters are **eager** (each `map` materializes its results) rather than
//!   lazy — fine for this workspace, whose pipelines end in a reduction or a
//!   `collect` anyway;
//! * `map_init` creates exactly one scratch value per worker chunk (upstream
//!   re-initializes per split, which is also per-worker in practice);
//! * the worker count is `RAYON_NUM_THREADS` when set and positive, else
//!   [`std::thread::available_parallelism`]; there is no global thread pool —
//!   scoped threads are spawned per adapter call, which keeps the stub
//!   dependency-free at the price of some per-call overhead.
//!
//! Every parallel reduction in the workspace is associative and
//! order-insensitive, and chunking preserves item order, so results are
//! deterministic and identical to the sequential path.

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter};
}

/// Worker threads to fan out across: `RAYON_NUM_THREADS` (when set and
/// positive, mirroring the real rayon's env knob), else the machine's
/// available parallelism.
fn num_threads() -> usize {
    parse_thread_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Pure parsing of the `RAYON_NUM_THREADS` value (testable without touching
/// the process environment, which is not thread-safe to mutate).
fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// [`fan_out_n`] with the ambient worker count.
fn fan_out<T, U, F>(items: Vec<T>, per_chunk: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>) -> Vec<U> + Sync,
{
    fan_out_n(num_threads(), items, per_chunk)
}

/// Splits `items` into one contiguous chunk per worker, runs `per_chunk` on
/// each chunk in a scoped thread, and concatenates the results in input
/// order. Falls back to inline execution for a single worker or a single
/// chunk. Panics in workers are propagated to the caller.
fn fan_out_n<T, U, F>(threads: usize, items: Vec<T>, per_chunk: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>) -> Vec<U> + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return per_chunk(items);
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let per_chunk = &per_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || per_chunk(chunk)))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;

    /// Mirrors `rayon::iter::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Stand-in for rayon's `ParallelIterator`: an order-preserving, eagerly
/// evaluated pipeline whose transforming adapters fan out over scoped
/// threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Mirrors `ParallelIterator::map`.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter {
            items: fan_out(self.items, |chunk| chunk.into_iter().map(&f).collect()),
        }
    }

    /// Mirrors `ParallelIterator::map_init`: one scratch value per worker
    /// chunk.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParIter<U>
    where
        U: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) -> U + Sync + Send,
    {
        self.map_init_n(num_threads(), init, f)
    }

    /// [`ParIter::map_init`] with an explicit worker count (kept separate so
    /// tests can pin the fan-out without mutating the environment).
    fn map_init_n<S, U, INIT, F>(self, threads: usize, init: INIT, f: F) -> ParIter<U>
    where
        U: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, T) -> U + Sync + Send,
    {
        ParIter {
            items: fan_out_n(threads, self.items, |chunk| {
                let mut scratch = init();
                chunk.into_iter().map(|x| f(&mut scratch, x)).collect()
            }),
        }
    }

    /// Mirrors `ParallelIterator::filter`.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        ParIter {
            items: fan_out(self.items, |chunk| chunk.into_iter().filter(&f).collect()),
        }
    }

    /// Mirrors rayon's `reduce(identity, op)` (not `Iterator::reduce`): folds
    /// each worker chunk, then folds the per-chunk results.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        fan_out(self.items, |chunk| {
            vec![chunk.into_iter().fold(identity(), &op)]
        })
        .into_iter()
        .reduce(&op)
        .unwrap_or_else(identity)
    }

    /// Mirrors `ParallelIterator::sum`: per-chunk partial sums, then a sum of
    /// partials.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        fan_out(self.items, |chunk| vec![chunk.into_iter().sum::<S>()])
            .into_iter()
            .sum()
    }

    /// Mirrors `ParallelIterator::count`.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Mirrors `ParallelIterator::collect` (via `FromIterator`), preserving
    /// input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0..100u64)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100u64).map(|x| x * x).sum());
    }

    #[test]
    fn map_init_scratch_is_per_worker() {
        // Pin 4 workers (64 items → 4 chunks of 16) and tag every output
        // with (scratch id, per-scratch sequence number). Exactly one
        // scratch per chunk means: 4 init calls, 4 distinct ids in chunk
        // order, and each chunk's sequence runs 1..=16.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out: Vec<(usize, u64)> = (0..64u64)
            .into_par_iter()
            .map_init_n(
                4,
                || (inits.fetch_add(1, Ordering::SeqCst), 0u64),
                |(id, seq), _x| {
                    *seq += 1;
                    (*id, *seq)
                },
            )
            .collect();
        assert_eq!(inits.load(Ordering::SeqCst), 4, "one init per worker chunk");
        assert_eq!(out.len(), 64);
        let distinct_ids: std::collections::HashSet<usize> =
            out.iter().map(|(id, _)| *id).collect();
        assert_eq!(distinct_ids.len(), 4, "four distinct scratch values");
        // Items stay in chunk-major input order with a fresh sequence per
        // chunk: a shared scratch would run 1..=64 under a single id, and
        // per-item re-initialization would never get past seq 1.
        for (i, (id, seq)) in out.iter().enumerate() {
            assert_eq!(*seq, (i as u64 % 16) + 1, "output {i} (scratch {id})");
        }
    }

    #[test]
    fn sum_and_count() {
        let s: f64 = vec![1.0, 2.5].into_par_iter().sum();
        assert_eq!(s, 3.5);
        assert_eq!((0..7).into_par_iter().filter(|x| x % 2 == 0).count(), 4);
    }

    #[test]
    fn order_preserved_across_chunks() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fans_out_across_real_threads() {
        // Pin 4 workers (works even on single-core machines) and observe
        // that chunks really execute on more than one thread. The worker
        // count is passed explicitly — mutating RAYON_NUM_THREADS here
        // would race sibling tests reading the environment.
        let ids: std::collections::HashSet<std::thread::ThreadId> =
            super::fan_out_n(4, (0..64usize).collect(), |chunk: Vec<usize>| {
                chunk.iter().map(|_| std::thread::current().id()).collect()
            })
            .into_iter()
            .collect();
        assert!(
            ids.len() > 1,
            "expected fan-out across threads, saw only {ids:?}"
        );
    }

    #[test]
    fn thread_env_parsing_is_pure() {
        assert_eq!(super::parse_thread_env(None), None);
        assert_eq!(super::parse_thread_env(Some("4")), Some(4));
        assert_eq!(super::parse_thread_env(Some(" 2 ")), Some(2));
        assert_eq!(super::parse_thread_env(Some("0")), None, "0 means default");
        assert_eq!(super::parse_thread_env(Some("lots")), None);
    }

    #[test]
    fn empty_input_hits_identity() {
        let total = Vec::<u64>::new()
            .into_par_iter()
            .map(|x| x)
            .reduce(|| 7, |a, b| a + b);
        assert_eq!(total, 7);
    }
}
