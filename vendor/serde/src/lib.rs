//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde: a JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits over it, and `#[derive(Serialize, Deserialize)]`
//! from the sibling `serde_derive` stub (plain structs with named fields and
//! fieldless enums — exactly what this workspace derives). `serde_json`
//! renders and parses [`Value`]. The public surface consumed by the workspace
//! (`use serde::{Serialize, Deserialize}` + derive + `serde_json::{to_string,
//! to_string_pretty, from_str}`) matches upstream, so swapping the real serde
//! back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped self-describing value — the stub's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup, erroring with the field name when missing.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a [`Value`] into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => {
                        let out = *n as $t;
                        if out as f64 == *n {
                            Ok(out)
                        } else {
                            Err(Error(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Identity impls, mirroring upstream serde_json's `Value`: a `Value` *is*
// the data model, so serializing clones and deserializing never fails.
// They let generic transcoders (e.g. the engine's binary wire codec) pass
// already-parsed values through `to_string`/`from_str` without re-typing.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            Option::<u32>::from_value(&Option::<u32>::None.to_value()),
            Ok(None)
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn field_lookup_errors() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert!(v.field("a").is_ok());
        assert!(v.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn narrowing_checked() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }
}
