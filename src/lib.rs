//! # power-scheduling
//!
//! A faithful, production-grade Rust implementation of
//! **"Scheduling to Minimize Power Consumption using Submodular Functions"**
//! (Morteza Zadimoghaddam, MIT, 2010 — the full version of the SPAA 2010
//! paper), including every substrate the paper builds on.
//!
//! ## What's inside
//!
//! * [`scheduling`] — the headline algorithms: `O(log n)` schedule-all
//!   (Thm 2.2.1) and the prize-collecting variants (Thms 2.3.1, 2.3.3) over
//!   arbitrary per-(processor, interval) energy costs and multi-interval
//!   jobs;
//! * [`submodular`] — submodular maximization with budget constraints
//!   (Lemma 2.1.2 bicriteria greedy, lazy + parallel), set functions, Set
//!   Cover;
//! * [`matching`] — bipartite matching substrate: Hopcroft–Karp and the
//!   incremental matching-rank oracles (Lemmas 2.2.2, 2.3.2);
//! * [`matroids`] — uniform / partition / graphic / transversal / laminar
//!   matroid oracles;
//! * [`secretary`] — the Chapter 3 online algorithms: submodular secretary
//!   (monotone and non-monotone), matroid-constrained, knapsack-constrained,
//!   subadditive (with the hardness construction), and bottleneck rules;
//! * [`baselines`] — exact branch-and-bound optimum and comparison
//!   heuristics;
//! * [`workloads`] — planted-OPT instances, Set-Cover-hard reductions,
//!   energy-market curves, secretary streams.
//!
//! ## Quickstart
//!
//! The [`Solver`](scheduling::Solver) builder is the entry point: it owns the
//! instance, the cost oracle, the candidate policy, and the solve options,
//! and exposes every algorithm of Chapter 2 as a goal method.
//!
//! ```
//! use power_scheduling::prelude::*;
//!
//! // Two jobs on one processor: one must run at t=0, one at t=3.
//! let inst = Instance::new(1, 4, vec![
//!     Job::unit(vec![SlotRef::new(0, 0)]),
//!     Job::unit(vec![SlotRef::new(0, 3)]),
//! ]);
//! // Classical cost model: waking the processor costs 10, each awake slot 1.
//! let cost = AffineCost::new(10.0, 1.0);
//! let schedule = Solver::new(&inst, &cost).schedule_all().unwrap();
//! // Expensive restarts ⇒ the algorithm keeps the processor awake through
//! // the gap: one interval [0,4) at cost 14 instead of two restarts at 22.
//! assert_eq!(schedule.awake.len(), 1);
//! assert_eq!(schedule.total_cost, 14.0);
//! ```

/// The scheduling core (re-export of the `sched-core` crate).
pub mod scheduling {
    pub use sched_core::*;
}

/// The batch-solving engine and JSONL wire protocol (re-export of the
/// `sched-engine` crate): worker-pool [`Engine`](engine::Engine),
/// [`SolveRequest`](engine::SolveRequest)/[`SolveResponse`](engine::SolveResponse),
/// and the TCP [`serve`](engine::serve) loop behind `power-sched batch` /
/// `power-sched serve`.
pub mod engine {
    pub use sched_engine::*;
}

/// The discrete-event online scheduling simulator (re-export of the
/// `sched-sim` crate): the [`Policy`](sim::Policy) trait, the
/// [`GreedyWake`](sim::GreedyWake) / [`ThresholdHiring`](sim::ThresholdHiring) /
/// [`PeriodicResolve`](sim::PeriodicResolve) policies, the causality-enforcing
/// replay loop, and the competitive-ratio harness behind `power-sched
/// replay`.
pub mod sim {
    pub use sched_sim::*;
}

/// Telemetry: the lock-cheap metrics registry and `obs/v1` snapshot format
/// shared by the solver, the engine, and the simulator (re-export of the
/// `sched-obs` crate). `--metrics-out` files and the engine's `metrics`
/// control verb both carry [`Snapshot`](obs::Snapshot) JSON.
pub mod obs {
    pub use sched_obs::*;
}

/// Submodular functions and budgeted maximization (re-export).
pub mod submodular {
    pub use ::submodular::*;
}

/// Bipartite matching substrate (re-export of `bmatch`).
pub mod matching {
    pub use bmatch::*;
}

/// Matroid oracles (re-export of `matroid`).
pub mod matroids {
    pub use matroid::*;
}

/// Online secretary algorithms (re-export).
pub mod secretary {
    pub use ::secretary::*;
}

/// Baselines and exact solvers (re-export).
pub mod baselines {
    pub use ::baselines::*;
}

/// Instance generators (re-export).
pub mod workloads {
    pub use ::workloads::*;
}

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::engine::{
        Engine, EngineConfig, SolveMode, SolveRequest, SolveResponse, PROTOCOL_VERSION,
    };
    pub use crate::scheduling::{
        enumerate_candidates, prize_collecting, prize_collecting_exact, profile_energy,
        schedule_all, solve_dvfs, validate_dvfs_schedule, validate_profiles, AffineCost,
        ArrivalTrace, CandidateInterval, CandidatePolicy, ConvexCost, DvfsInstance, DvfsSchedule,
        EnergyCost, FreqLadder, Instance, Job, PerProcessorAffine, PowerProfile, ProfileCost,
        Schedule, ScheduleError, SleepChoice, SleepState, SlotRef, SolveOptions, Solver,
        TimeVaryingCost, TimedJob, WarmHandle, WarmStats,
    };
    pub use crate::sim::{
        replay_fleet, replay_with_report, FleetOptions, OfflineRef, Policy, PolicyKind,
        ReplayReport,
    };
    pub use crate::submodular::{budgeted_greedy, BitSet, GreedyConfig, SetFn};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_solves() {
        let inst = Instance::new(1, 2, vec![Job::unit(vec![SlotRef::new(0, 0)])]);
        let cost = AffineCost::new(1.0, 1.0);
        let s = Solver::new(&inst, &cost).schedule_all().unwrap();
        assert_eq!(s.scheduled_count, 1);

        // The free-function path stays available and agrees with the builder.
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let free = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        assert_eq!(free.total_cost, s.total_cost);
    }

    #[test]
    fn quickstart_numbers_hold() {
        // The exact scenario from the crate docs: one interval [0,4), cost 14.
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let cost = AffineCost::new(10.0, 1.0);
        let schedule = Solver::new(&inst, &cost).schedule_all().unwrap();
        assert_eq!(schedule.awake.len(), 1);
        assert_eq!(schedule.total_cost, 14.0);
        assert_eq!((schedule.awake[0].start, schedule.awake[0].end), (0, 4));
    }
}
