//! `power-sched` — command-line front end for the scheduling library.
//!
//! ```text
//! power-sched generate --seed 7 --processors 2 --horizon 16 --jobs 12 --out inst.json
//! power-sched solve inst.json --restart 3 --rate 1 [--target 25.5] [--out sched.json]
//! power-sched validate inst.json sched.json
//! ```
//!
//! Instances and schedules are serialized with serde as plain JSON, so they
//! round-trip through scripts and other tooling. The solver uses the affine
//! cost model from the CLI flags; richer cost models are a library-level
//! concern (they are closures/oracles, not data).

use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use power_scheduling::scheduling::simulate::simulate;
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{planted_instance, PlantedConfig};
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        _ => {
            eprintln!(
                "usage: power-sched <generate|solve|validate> ...\n\
                 \n  generate --seed S --processors P --horizon T --jobs N [--values V] --out FILE\
                 \n  solve INSTANCE.json [--restart A] [--rate R] [--target Z] [--policy all|single|maxlen:K] [--out FILE]\
                 \n  validate INSTANCE.json SCHEDULE.json"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let seed: u64 =
        flag(args, "--seed").map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let processors: u32 =
        flag(args, "--processors").map_or(Ok(2), |v| v.parse().map_err(|e| format!("{e}")))?;
    let horizon: u32 =
        flag(args, "--horizon").map_or(Ok(16), |v| v.parse().map_err(|e| format!("{e}")))?;
    let jobs: usize =
        flag(args, "--jobs").map_or(Ok(12), |v| v.parse().map_err(|e| format!("{e}")))?;
    let values: u32 =
        flag(args, "--values").map_or(Ok(1), |v| v.parse().map_err(|e| format!("{e}")))?;
    let out = flag(args, "--out").ok_or("--out FILE is required")?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let p = planted_instance(
        &PlantedConfig {
            num_processors: processors,
            horizon,
            target_jobs: jobs,
            decoy_prob: 0.3,
            max_value: values,
            cost_model: PlantedCostModel::Affine { restart: 3.0 },
            policy: CandidatePolicy::All,
        },
        &mut rng,
    );
    let json = serde_json::to_string_pretty(&p.instance).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} jobs, {} processors, horizon {}; planted feasible cost {:.2})",
        out,
        p.instance.num_jobs(),
        p.instance.num_processors,
        p.instance.horizon,
        p.planted_cost
    );
    Ok(())
}

fn parse_policy(s: &str) -> Result<CandidatePolicy, String> {
    match s {
        "all" => Ok(CandidatePolicy::All),
        "single" => Ok(CandidatePolicy::SingleSlots),
        other => match other.strip_prefix("maxlen:") {
            Some(k) => Ok(CandidatePolicy::MaxLength(
                k.parse().map_err(|e| format!("bad maxlen: {e}"))?,
            )),
            None => Err(format!("unknown policy '{other}'")),
        },
    }
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing INSTANCE.json")?;
    let restart: f64 =
        flag(args, "--restart").map_or(Ok(3.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let rate: f64 =
        flag(args, "--rate").map_or(Ok(1.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let policy = parse_policy(&flag(args, "--policy").unwrap_or_else(|| "all".into()))?;
    let target: Option<f64> = match flag(args, "--target") {
        Some(v) => Some(v.parse().map_err(|e| format!("{e}"))?),
        None => None,
    };

    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let inst: Instance = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let cost = AffineCost::new(restart, rate);
    let solver = Solver::new(&inst, &cost).policy(policy);

    let schedule = match target {
        Some(z) => solver.prize_collecting_exact(z),
        None => solver.schedule_all(),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "scheduled {}/{} jobs (value {:.1}) at energy cost {:.2} with {} awake intervals",
        schedule.scheduled_count,
        inst.num_jobs(),
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    print!("{}", simulate(&inst, &schedule).render());

    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let [inst_path, sched_path] = args else {
        return Err("usage: validate INSTANCE.json SCHEDULE.json".into());
    };
    let inst: Instance =
        serde_json::from_str(&std::fs::read_to_string(inst_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    let sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    let violations = validate_schedule(&inst, &sched);
    if violations.is_empty() {
        println!("schedule is valid");
        Ok(())
    } else {
        Err(format!("schedule invalid: {violations:?}"))
    }
}
