//! `power-sched` — command-line front end for the scheduling library.
//!
//! ```text
//! power-sched generate --seed 7 --processors 2 --horizon 16 --jobs 12 --out inst.json
//! power-sched generate --trace poisson --seed 7 --horizon 24 --jobs 12 --out trace.json
//! power-sched generate --seed 7 --processors 3 --hetero 2 --out inst.json --profiles-out profs.json
//! power-sched generate --dvfs --seed 7 --out trace.json --instance-out inst.json --ladder-out ladder.json
//! power-sched solve inst.json --restart 3 --rate 1 [--target 25.5] [--out sched.json]
//! power-sched solve inst.json --profiles profs.json [--out sched.json]
//! power-sched solve inst.json --freq-ladder ladder.json --restart 4 [--out sched.json]
//! power-sched validate inst.json sched.json [--freq-ladder ladder.json]
//! power-sched batch requests.jsonl [--workers N] [--out responses.jsonl]
//! power-sched batch requests.jsonl --connect HOST:PORT [--shutdown]
//! power-sched serve --addr 127.0.0.1:7171 [--workers N]
//! power-sched replay trace.json --policy resolve:4[:warm] [--offline auto] [--verbose]
//! power-sched replay traces/ --policy greedy --workers 4 --out reports.jsonl
//! power-sched replay --gen cliffs --count 4 --seed 7 --policy hiring
//! power-sched replay --gen --policy resolve:1:warm --metrics-out metrics.json
//! power-sched replay --gen --policy resolve:4:warm --trace-out trace.json
//! power-sched explain inst.json --restart 3 --rate 1 [--trace-out trace.json]
//! power-sched metrics metrics.json
//! power-sched perf [--quick] [--out BENCH_solver.json] [--baseline BENCH_solver.json]
//! ```
//!
//! Instances and schedules are serialized with serde as plain JSON, so they
//! round-trip through scripts and other tooling. `batch` and `serve` speak
//! the versioned wire protocol of the `sched-engine` crate: since v3 the
//! default transport is length-prefixed binary frames, negotiated per
//! connection, while the legacy JSONL line protocol (one request object per
//! line, one response line per request, in input order) remains accepted on
//! the same port — pick one with `--format binary|json|jsonl`. `batch
//! --connect` turns the same subcommand into a TCP client, which is how
//! scripts drive (and gracefully shut down, via `--shutdown`) a running
//! `serve` instance; `serve --queue-depth D --shed-policy reject|oldest`
//! bounds the admission queue and answers excess load with structured
//! `Overloaded` responses instead of queueing without bound. `replay` drives the `sched-sim` online simulator: it
//! replays timed arrival traces (files, a directory, or generated on the
//! fly with `--gen`) through an online policy and reports one JSON line per
//! trace — online cost, offline reference cost, and the empirical
//! competitive ratio — plus an aggregate table on stderr. `perf` runs the
//! pinned perf-harness workloads (`bench::perf`) and emits the
//! `BENCH_solver.json` performance report, optionally gating against a
//! committed baseline.

use power_scheduling::engine::{
    serve_with_options, Engine, EngineClient, EngineConfig, ServeOptions, ShedPolicy, Transport,
};
use power_scheduling::obs;
use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use power_scheduling::scheduling::simulate::simulate;
use power_scheduling::scheduling::{validate_profiles, PowerProfile, ProfileCost};
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{
    dvfs_instance, dvfs_trace, generate_trace, hetero_profiles, hetero_trace, planted_instance,
    ArrivalConfig, DvfsConfig, PlantedConfig, TraceKind,
};
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("perf") => bench::perf::cli(&args[1..]),
        _ => {
            eprintln!(
                "usage: power-sched <generate|solve|explain|validate|batch|serve|replay|metrics|perf> ...\n\
                 \n  generate --seed S --processors P --horizon T --jobs N [--values V] --out FILE\
                 \n           [--hetero LEVELS --profiles-out FILE]\
                 \n  generate --trace poisson|diurnal|cliffs --seed S [--processors P --horizon T --jobs N\
                 \n           --restart A --rate R --slack K --values V] [--hetero LEVELS] --out FILE\
                 \n  generate --dvfs --seed S [--processors P --horizon T --jobs N --restart A\
                 \n           --alpha A --beta B --gamma G --freqs 1,2,4 --max-work W --slack K --values V]\
                 \n           [--out TRACE] [--instance-out FILE --ladder-out FILE]\
                 \n  solve INSTANCE.json [--restart A] [--rate R] [--profiles FILE] [--target Z]\
                 \n        [--freq-ladder FILE] [--policy all|single|maxlen:K] [--out FILE] [--metrics-out FILE]\
                 \n  explain INSTANCE.json [solve flags] [--trace-out FILE]\
                 \n  validate INSTANCE.json SCHEDULE.json [--freq-ladder FILE]\
                 \n  batch [REQUESTS.jsonl|-] [--workers N] [--queue-depth D] [--out FILE] [--metrics-out FILE]\
                 \n  batch [REQUESTS.jsonl|-] --connect HOST:PORT [--format binary|json|jsonl] [--shutdown] [--out FILE]\
                 \n  serve --addr HOST:PORT [--workers N] [--queue-depth D] [--shed-policy reject|oldest]\
                 \n        [--metrics-out FILE] [--flight-recorder]\
                 \n  replay [TRACE.json|DIR] [--gen [poisson|diurnal|cliffs] --count N --seed S --hetero LEVELS ...]\
                 \n         [--policy greedy|hiring[:F]|resolve[:K]] [--offline auto|greedy|exact]\
                 \n         [--workers N] [--out FILE] [--metrics-out FILE] [--trace-out FILE] [--verbose]\
                 \n  metrics SNAPSHOT.json\
                 \n  perf [--quick] [--out FILE] [--baseline FILE] [--tolerance F]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
        None => Ok(default),
    }
}

/// `--metrics-out FILE`: installs the process-wide ambient metrics registry
/// so everything the solver stack records on this process's threads lands in
/// one snapshot, and returns the path plus the handle to snapshot at exit.
fn metrics_registry(args: &[String]) -> Option<(String, std::sync::Arc<obs::Registry>)> {
    let path = flag(args, "--metrics-out")?;
    let registry = std::sync::Arc::new(obs::Registry::new());
    obs::install_global(std::sync::Arc::clone(&registry));
    Some((path, registry))
}

/// Writes one `obs/v1` snapshot as compact JSON (newline-terminated).
fn write_metrics(path: &str, snapshot: &obs::Snapshot) -> Result<(), String> {
    std::fs::write(path, snapshot.to_json() + "\n").map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

/// Flushes `--metrics-out` regardless of how the command body ended: a run
/// that fails midway still leaves behind whatever it recorded up to the
/// failure, which is exactly when the numbers are most wanted. The run's
/// own error takes precedence over a flush error.
fn flush_metrics(
    metrics: Option<(String, std::sync::Arc<obs::Registry>)>,
    result: Result<(), String>,
) -> Result<(), String> {
    let flush = match &metrics {
        Some((path, registry)) => write_metrics(path, &registry.snapshot()),
        None => Ok(()),
    };
    result.and(flush)
}

/// `--trace-out FILE`: installs the process-wide ambient tracer so every
/// span and decision event recorded anywhere in the process lands in one
/// timeline. Returns the path plus the tracer to export at exit.
fn trace_tracer(args: &[String]) -> Option<(String, std::sync::Arc<obs::trace::Tracer>)> {
    let path = flag(args, "--trace-out")?;
    let tracer = std::sync::Arc::new(obs::trace::Tracer::new());
    obs::trace::install_global(std::sync::Arc::clone(&tracer));
    Some((path, tracer))
}

/// Writes the collected trace: Chrome trace-event JSON by default (load it
/// in Perfetto or `chrome://tracing`), `trace/v1` JSONL when the path ends
/// in `.jsonl`.
fn write_trace(path: &str, tracer: &obs::trace::Tracer) -> Result<(), String> {
    let body = if path.ends_with(".jsonl") {
        tracer.to_trace_jsonl()
    } else {
        tracer.to_chrome_json() + "\n"
    };
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {} trace events to {path}", tracer.len());
    Ok(())
}

/// Parses the shared arrival-trace sizing flags. Unset flags fall back to
/// [`ArrivalConfig::default`], so `generate --trace` and `replay --gen`
/// describe the same workload by default.
fn arrival_config(args: &[String]) -> Result<ArrivalConfig, String> {
    let d = ArrivalConfig::default();
    let cfg = ArrivalConfig {
        num_processors: parse_flag(args, "--processors", d.num_processors)?,
        horizon: parse_flag(args, "--horizon", d.horizon)?,
        target_jobs: parse_flag(args, "--jobs", d.target_jobs)?,
        restart: parse_flag(args, "--restart", d.restart)?,
        rate: parse_flag(args, "--rate", d.rate)?,
        max_value: parse_flag(args, "--values", d.max_value)?,
        slack: parse_flag(args, "--slack", d.slack)?,
    };
    if cfg.num_processors == 0 || cfg.horizon == 0 {
        return Err("--processors and --horizon must be positive".into());
    }
    if !(cfg.restart.is_finite()
        && cfg.rate.is_finite()
        && cfg.restart >= 0.0
        && cfg.rate >= 0.0
        && cfg.restart + cfg.rate > 0.0)
    {
        return Err(format!(
            "--restart/--rate must be finite, non-negative, and not both zero \
             (got {}, {})",
            cfg.restart, cfg.rate
        ));
    }
    Ok(cfg)
}

/// Parses the DVFS generator knobs (`generate --dvfs`). Unset flags fall
/// back to [`DvfsConfig::default`]; the ladder is validated here so the
/// generators (which assert validity) never panic on CLI input.
fn dvfs_config(args: &[String]) -> Result<DvfsConfig, String> {
    let d = DvfsConfig::default();
    let freqs: Vec<u32> = match flag(args, "--freqs") {
        Some(csv) => csv
            .split(',')
            .map(|f| f.trim().parse().map_err(|e| format!("bad --freqs: {e}")))
            .collect::<Result<_, _>>()?,
        None => d.freqs.clone(),
    };
    let cfg = DvfsConfig {
        num_processors: parse_flag(args, "--processors", d.num_processors)?,
        horizon: parse_flag(args, "--horizon", d.horizon)?,
        target_jobs: parse_flag(args, "--jobs", d.target_jobs)?,
        wake_cost: parse_flag(args, "--restart", d.wake_cost)?,
        alpha: parse_flag(args, "--alpha", d.alpha)?,
        beta: parse_flag(args, "--beta", d.beta)?,
        gamma: parse_flag(args, "--gamma", d.gamma)?,
        freqs,
        max_work: parse_flag(args, "--max-work", d.max_work)?,
        max_value: parse_flag(args, "--values", d.max_value)?,
        slack: parse_flag(args, "--slack", d.slack)?,
    };
    if cfg.num_processors == 0 || cfg.horizon == 0 || cfg.max_work == 0 {
        return Err("--processors, --horizon, and --max-work must be positive".into());
    }
    if !(cfg.wake_cost.is_finite() && cfg.wake_cost >= 0.0) {
        return Err(format!(
            "--restart (wake cost) must be finite and non-negative, got {}",
            cfg.wake_cost
        ));
    }
    FreqLadder {
        alpha: cfg.alpha,
        beta: cfg.beta,
        gamma: cfg.gamma,
        freqs: cfg.freqs.clone(),
    }
    .validate()
    .map_err(|e| format!("invalid frequency ladder: {e}"))?;
    Ok(cfg)
}

/// `generate --dvfs`: speed-scaling workloads. `--out` writes a replayable
/// arrival trace with the ladder embedded; `--instance-out`/`--ladder-out`
/// write an offline instance (jobs carrying work requirements) and the
/// ladder file `solve --freq-ladder` consumes. Trace and instance draw from
/// the same seeded stream in that order, so the triple is reproducible.
fn generate_dvfs(args: &[String], seed: u64) -> Result<(), String> {
    let cfg = dvfs_config(args)?;
    let trace_out = flag(args, "--out");
    let instance_out = flag(args, "--instance-out");
    let ladder_out = flag(args, "--ladder-out");
    if trace_out.is_none() && instance_out.is_none() {
        return Err("generate --dvfs needs --out TRACE and/or --instance-out FILE".into());
    }
    if instance_out.is_some() != ladder_out.is_some() {
        return Err("--instance-out and --ladder-out go together (solve needs both files)".into());
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    if let Some(out) = trace_out {
        let mut trace = dvfs_trace(&cfg, &mut rng);
        trace.name = format!("{}-s{seed}", trace.name);
        trace
            .validate()
            .map_err(|e| format!("generated trace is invalid: {e}"))?;
        let json = serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({}: {} jobs, {} processors, horizon {}, wake {}, ladder {:?})",
            out,
            trace.name,
            trace.jobs.len(),
            trace.num_processors,
            trace.horizon,
            trace.restart,
            cfg.freqs
        );
    }
    if let (Some(inst_out), Some(ladder_out)) = (instance_out, ladder_out) {
        let dvfs = dvfs_instance(&cfg, &mut rng);
        dvfs.validate()
            .map_err(|e| format!("generated instance is invalid: {e}"))?;
        let inst = Instance {
            num_processors: dvfs.num_processors,
            horizon: dvfs.horizon,
            jobs: dvfs.jobs.clone(),
        };
        let json = serde_json::to_string_pretty(&inst).map_err(|e| e.to_string())?;
        std::fs::write(&inst_out, json).map_err(|e| e.to_string())?;
        let total_work: u32 = dvfs.jobs.iter().map(Job::work_units).sum();
        println!(
            "wrote {} ({} jobs, {} work units, {} processors, horizon {})",
            inst_out,
            inst.num_jobs(),
            total_work,
            inst.num_processors,
            inst.horizon
        );
        let json = serde_json::to_string_pretty(&dvfs.ladder).map_err(|e| e.to_string())?;
        std::fs::write(&ladder_out, json).map_err(|e| e.to_string())?;
        println!(
            "wrote {ladder_out} ({} levels, alpha {} beta {} gamma {})",
            cfg.freqs.len(),
            cfg.alpha,
            cfg.beta,
            cfg.gamma
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let seed: u64 =
        flag(args, "--seed").map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let processors: u32 =
        flag(args, "--processors").map_or(Ok(2), |v| v.parse().map_err(|e| format!("{e}")))?;
    let horizon: u32 =
        flag(args, "--horizon").map_or(Ok(16), |v| v.parse().map_err(|e| format!("{e}")))?;
    let jobs: usize =
        flag(args, "--jobs").map_or(Ok(12), |v| v.parse().map_err(|e| format!("{e}")))?;
    let values: u32 =
        flag(args, "--values").map_or(Ok(1), |v| v.parse().map_err(|e| format!("{e}")))?;
    if args.iter().any(|a| a == "--dvfs") {
        return generate_dvfs(args, seed);
    }
    let out = flag(args, "--out").ok_or("--out FILE is required")?;
    let hetero: Option<u32> = match flag(args, "--hetero") {
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("bad --hetero sleep-level count: {e}"))?,
        ),
        None => None,
    };

    if let Some(kind) = flag(args, "--trace") {
        let kind: TraceKind = kind.parse()?;
        let cfg = arrival_config(args)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut trace = match hetero {
            Some(levels) => hetero_trace(kind, &cfg, levels, &mut rng),
            None => generate_trace(kind, &cfg, &mut rng),
        };
        trace.name = format!("{}-s{seed}", trace.name);
        // Never write a trace the replay subcommand would reject.
        trace
            .validate()
            .map_err(|e| format!("generated trace is invalid: {e}"))?;
        let json = serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({}: {} jobs, {} processors, horizon {}, restart {}, rate {})",
            out,
            trace.name,
            trace.jobs.len(),
            trace.num_processors,
            trace.horizon,
            trace.restart,
            trace.rate
        );
        return Ok(());
    }

    // resolve the full flag set before writing anything, so a missing
    // --profiles-out cannot leave a stray instance file (and a misleading
    // "wrote ..." line) behind a nonzero exit
    let profiles_out = match hetero {
        Some(_) => Some(
            flag(args, "--profiles-out")
                .ok_or("--hetero on an instance needs --profiles-out FILE for the fleet")?,
        ),
        None => None,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let p = planted_instance(
        &PlantedConfig {
            num_processors: processors,
            horizon,
            target_jobs: jobs,
            decoy_prob: 0.3,
            max_value: values,
            cost_model: PlantedCostModel::Affine { restart: 3.0 },
            policy: CandidatePolicy::All,
        },
        &mut rng,
    );
    let json = serde_json::to_string_pretty(&p.instance).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} jobs, {} processors, horizon {}; planted feasible cost {:.2})",
        out,
        p.instance.num_jobs(),
        p.instance.num_processors,
        p.instance.horizon,
        p.planted_cost
    );
    if let (Some(levels), Some(profiles_out)) = (hetero, profiles_out) {
        // profiles are drawn from the same seeded stream, after the
        // instance, so (seed, sizing, levels) reproduces the pair
        let fleet = hetero_profiles(processors, levels, &mut rng);
        let json = serde_json::to_string_pretty(&fleet).map_err(|e| e.to_string())?;
        std::fs::write(&profiles_out, json).map_err(|e| e.to_string())?;
        println!(
            "wrote {profiles_out} ({processors} heterogeneous profiles, {levels} sleep level{})",
            if levels == 1 { "" } else { "s" }
        );
    }
    Ok(())
}

/// Loads the instance plus the cost oracle shared by `solve` and `explain`:
/// `--profiles FILE` switches pricing from the uniform affine model to an
/// explicit per-processor fleet (validated before the oracle asserts).
fn load_instance_and_cost(
    path: &str,
    args: &[String],
) -> Result<(Instance, Box<dyn EnergyCost>), String> {
    let restart: f64 =
        flag(args, "--restart").map_or(Ok(3.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let rate: f64 =
        flag(args, "--rate").map_or(Ok(1.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let inst: Instance =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a valid instance: {e}"))?;
    // Deserialization builds the struct without running Instance::new's
    // checks; validate before the solver indexes slots by id.
    inst.validate()
        .map_err(|e| format!("{path} is not a valid instance: {e}"))?;
    let cost: Box<dyn EnergyCost> = match flag(args, "--profiles") {
        Some(pp) => {
            let text = std::fs::read_to_string(&pp).map_err(|e| format!("reading {pp}: {e}"))?;
            let fleet: Vec<PowerProfile> = serde_json::from_str(&text)
                .map_err(|e| format!("{pp} is not a valid profile fleet: {e}"))?;
            validate_profiles(&fleet, inst.num_processors)
                .map_err(|e| format!("{pp} does not fit {path}: {e}"))?;
            Box::new(ProfileCost::new(&fleet))
        }
        None => Box::new(AffineCost::new(restart, rate)),
    };
    Ok((inst, cost))
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let metrics = metrics_registry(args);
    flush_metrics(metrics, solve_run(args))
}

/// Loads and validates a `--freq-ladder FILE` JSON ladder.
fn load_ladder(path: &str) -> Result<FreqLadder, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let ladder: FreqLadder = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a valid frequency ladder: {e}"))?;
    ladder
        .validate()
        .map_err(|e| format!("{path} is not a valid frequency ladder: {e}"))?;
    Ok(ladder)
}

/// `solve INSTANCE --freq-ladder FILE`: the speed-scaling solve. Jobs carry
/// work requirements; the solver picks per-interval frequency levels, paying
/// `wake + (alpha·f^gamma + beta) · len` per awake interval. Mutually
/// exclusive with `--profiles`/`--target` (DVFS is schedule-all only).
fn solve_dvfs_run(args: &[String], inst_path: &str, ladder_path: &str) -> Result<(), String> {
    if flag(args, "--profiles").is_some() {
        return Err("--freq-ladder and --profiles are mutually exclusive".into());
    }
    if flag(args, "--target").is_some() {
        return Err("--freq-ladder supports schedule-all only (no --target)".into());
    }
    let restart: f64 =
        flag(args, "--restart").map_or(Ok(3.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let text = std::fs::read_to_string(inst_path).map_err(|e| e.to_string())?;
    let inst: Instance = serde_json::from_str(&text)
        .map_err(|e| format!("{inst_path} is not a valid instance: {e}"))?;
    inst.validate()
        .map_err(|e| format!("{inst_path} is not a valid instance: {e}"))?;
    let dvfs = DvfsInstance {
        num_processors: inst.num_processors,
        horizon: inst.horizon,
        wake_cost: restart,
        ladder: load_ladder(ladder_path)?,
        jobs: inst.jobs,
    };
    dvfs.validate().map_err(|e| e.to_string())?;
    let schedule = solve_dvfs(&dvfs).map_err(|e| e.to_string())?;
    let completed = schedule
        .assignments
        .iter()
        .zip(&dvfs.jobs)
        .filter(|(quanta, job)| quanta.len() == job.work_units() as usize)
        .count();
    println!(
        "scheduled {}/{} jobs (value {:.1}) at energy cost {:.2} with {} awake intervals",
        completed,
        dvfs.jobs.len(),
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    for iv in &schedule.awake {
        println!(
            "  proc {} [{}, {}) at freq {} (level {}): cost {:.2}",
            iv.proc, iv.start, iv.end, iv.freq, iv.level, iv.cost
        );
    }
    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn solve_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing INSTANCE.json")?;
    if let Some(ladder_path) = flag(args, "--freq-ladder") {
        return solve_dvfs_run(args, path, &ladder_path);
    }
    let policy: CandidatePolicy = flag(args, "--policy")
        .unwrap_or_else(|| "all".into())
        .parse()?;
    let target: Option<f64> = match flag(args, "--target") {
        Some(v) => Some(v.parse().map_err(|e| format!("{e}"))?),
        None => None,
    };

    let (inst, cost) = load_instance_and_cost(path, args)?;
    let solver = Solver::new(&inst, cost.as_ref()).policy(policy);

    let schedule = match target {
        Some(z) => solver.prize_collecting_exact(z),
        None => solver.schedule_all(),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "scheduled {}/{} jobs (value {:.1}) at energy cost {:.2} with {} awake intervals",
        schedule.scheduled_count,
        inst.num_jobs(),
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    print!("{}", simulate(&inst, &schedule).render());

    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Finds an event argument by key.
fn event_arg<'e>(e: &'e obs::trace::TraceEvent, key: &str) -> Option<&'e obs::trace::ArgValue> {
    e.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

/// Numeric view of an event argument (`NaN` when absent or non-numeric).
fn event_num(e: &obs::trace::TraceEvent, key: &str) -> f64 {
    match event_arg(e, key) {
        Some(obs::trace::ArgValue::U64(v)) => *v as f64,
        Some(obs::trace::ArgValue::I64(v)) => *v as f64,
        Some(obs::trace::ArgValue::F64(v)) => *v,
        _ => f64::NAN,
    }
}

/// `explain INSTANCE.json`: runs the same solve as `solve`, with the tracer
/// installed, and narrates the greedy's decision log pick by pick — winner
/// vs runner-up gains, lazy re-evaluations, budget remaining — followed by
/// a span-time summary. `--trace-out FILE` additionally exports the full
/// timeline for Perfetto.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing INSTANCE.json")?;
    let tracer = std::sync::Arc::new(obs::trace::Tracer::new());
    obs::trace::install_global(std::sync::Arc::clone(&tracer));
    let stem = std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
    let trace_id = format!("explain-{stem}");
    obs::trace::set_trace_id(Some(&trace_id));

    let policy: CandidatePolicy = flag(args, "--policy")
        .unwrap_or_else(|| "all".into())
        .parse()?;
    let target: Option<f64> = match flag(args, "--target") {
        Some(v) => Some(v.parse().map_err(|e| format!("{e}"))?),
        None => None,
    };
    let (inst, cost) = load_instance_and_cost(path, args)?;
    let solver = Solver::new(&inst, cost.as_ref()).policy(policy);
    let schedule = match target {
        Some(z) => solver.prize_collecting_exact(z),
        None => solver.schedule_all(),
    }
    .map_err(|e| e.to_string())?;
    obs::trace::set_trace_id(None);

    println!(
        "explain {path} [{trace_id}]: {} jobs, {} processors, horizon {}",
        inst.num_jobs(),
        inst.num_processors,
        inst.horizon
    );
    let events = tracer.events();
    for e in events.iter().filter(|e| e.name == "submodular.greedy.pick") {
        let reevals = event_num(e, "reevals");
        print!(
            "  pick {:>3}: cand {} gain {:.3} cost {:.3} ratio {:.3}  utility {:.3} remaining {:.3}",
            event_num(e, "iter"),
            event_num(e, "chosen"),
            event_num(e, "gain"),
            event_num(e, "cost"),
            event_num(e, "ratio"),
            event_num(e, "utility_after"),
            event_num(e, "remaining"),
        );
        if let Some(ru) = event_arg(e, "runner_up") {
            print!(
                "  (runner-up cand {ru} ratio {:.3})",
                event_num(e, "runner_up_ratio")
            );
        }
        if reevals > 0.0 {
            print!("  [{reevals} lazy re-evals]");
        }
        println!();
    }
    // Span-time summary: where the solve's wall time went, per span name.
    let mut spans: Vec<(&'static str, u64, u64)> = Vec::new();
    for e in events
        .iter()
        .filter(|e| e.kind == obs::trace::EventKind::Span)
    {
        match spans.iter_mut().find(|(n, _, _)| *n == e.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += e.dur_ns;
            }
            None => spans.push((e.name, 1, e.dur_ns)),
        }
    }
    spans.sort_by_key(|&(_, _, total)| std::cmp::Reverse(total));
    for (name, count, total) in &spans {
        println!(
            "  span {name}: {count} x, total {:.3} ms",
            *total as f64 / 1e6
        );
    }
    println!(
        "scheduled {}/{} jobs (value {:.1}) at energy cost {:.2} with {} awake intervals",
        schedule.scheduled_count,
        inst.num_jobs(),
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    if let Some(out) = flag(args, "--trace-out") {
        write_trace(&out, &tracer)?;
    }
    Ok(())
}

/// Reads the JSONL request text: a file path, or stdin for `-`/no operand.
fn read_requests(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(text)
        }
        Some(path) if path.starts_with("--") => Err(format!(
            "batch expects the requests file before flags, found '{path}'"
        )),
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

/// Writes response lines to `--out FILE`, or stdout for `-`/no flag.
fn write_responses(args: &[String], lines: &[String]) -> Result<(), String> {
    let body = if lines.is_empty() {
        String::new()
    } else {
        format!("{}\n", lines.join("\n"))
    };
    match flag(args, "--out") {
        None => {
            print!("{body}");
            Ok(())
        }
        Some(ref out) if out == "-" => {
            print!("{body}");
            Ok(())
        }
        Some(out) => {
            std::fs::write(&out, body).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {} responses to {out}", lines.len());
            Ok(())
        }
    }
}

fn engine_config(args: &[String]) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default();
    if let Some(w) = flag(args, "--workers") {
        cfg.workers = w.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    // --queue-depth is the documented spelling; --queue stays as an alias.
    if let Some(q) = flag(args, "--queue-depth").or_else(|| flag(args, "--queue")) {
        cfg.queue_depth = q.parse().map_err(|e| format!("bad --queue-depth: {e}"))?;
    }
    // Bare flag: retain the last events per worker thread and dump them on
    // request failures, accept-loop bursts, and graceful shutdown.
    cfg.flight_recorder = args.iter().any(|a| a == "--flight-recorder");
    Ok(cfg)
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let text = read_requests(args)?;
    let metrics_out = flag(args, "--metrics-out");
    let out_lines = match flag(args, "--connect") {
        Some(addr) => {
            if metrics_out.is_some() {
                return Err(
                    "--metrics-out needs a local engine; in client mode ask the running \
                     server with the 'metrics' control verb or start it with \
                     serve --metrics-out"
                        .into(),
                );
            }
            let transport: Transport = match flag(args, "--format") {
                Some(f) => f.parse()?,
                None => Transport::default(), // v3 binary frames
            };
            batch_over_tcp(
                &text,
                &addr,
                transport,
                args.iter().any(|a| a == "--shutdown"),
            )?
        }
        None => {
            let engine = Engine::new(engine_config(args)?);
            let responses = engine.process_lines(text.lines());
            let (ok, failed) = responses.iter().fold((0, 0), |(ok, failed), r| {
                if r.ok {
                    (ok + 1, failed)
                } else {
                    (ok, failed + 1)
                }
            });
            eprintln!(
                "batch: {ok} solved, {failed} failed on {} workers",
                engine.workers()
            );
            if let Some(path) = &metrics_out {
                write_metrics(path, &engine.metrics_snapshot())?;
            }
            responses
                .iter()
                .map(|r| serde_json::to_string(r).map_err(|e| e.to_string()))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    write_responses(args, &out_lines)
}

/// Client mode: pipeline the request lines to a `power-sched serve`
/// instance over the chosen transport (v3 binary frames by default) and
/// collect one response line per non-blank request line (plus the shutdown
/// acknowledgement when `--shutdown` is set). Framed responses are
/// re-serialized as JSONL so the output file looks the same on every
/// transport.
fn batch_over_tcp(
    text: &str,
    addr: &str,
    transport: Transport,
    shutdown: bool,
) -> Result<Vec<String>, String> {
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    if lines.iter().all(|l| l.trim().is_empty()) && !shutdown {
        // Nothing to send means nothing to wait for; entering the read loop
        // would block forever (neither side would ever write).
        return Ok(Vec::new());
    }
    let mut client =
        EngineClient::connect(addr, transport).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let responses = client
        .pipeline_lines(&lines, shutdown)
        .map_err(|e| format!("batch over {transport}: {e}"))?;
    responses
        .iter()
        .map(|v| serde_json::to_string(v).map_err(|e| e.to_string()))
        .collect()
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let cfg = engine_config(args)?;
    let listener = TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Scripts wait for this exact line before connecting.
    println!("power-sched serve: listening on {local}");
    std::io::stdout().flush().ok();
    let metrics_out = flag(args, "--metrics-out");
    let shed_policy: Option<ShedPolicy> = match flag(args, "--shed-policy") {
        Some(p) => Some(p.parse()?),
        None => None,
    };
    serve_with_options(
        listener,
        cfg,
        ServeOptions {
            metrics_out: metrics_out.as_deref().map(std::path::Path::new),
            shed_policy,
        },
    )
    .map_err(|e| format!("serve loop: {e}"))?;
    println!("power-sched serve: shutdown complete");
    Ok(())
}

/// Loads the replay workload: positional trace file / directory operands,
/// plus `--gen KIND --count N` generated traces.
fn replay_traces(args: &[String]) -> Result<Vec<ArrivalTrace>, String> {
    let mut traces: Vec<ArrivalTrace> = Vec::new();

    // Positional operands may appear anywhere among the flags; every flag
    // of `replay` consumes one value operand, except --verbose (bare) and
    // --gen (whose KIND is optional, defaulting to poisson, so it may sit
    // directly before another flag).
    let mut operands: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            let has_value = match args[i].as_str() {
                "--verbose" => false,
                "--gen" => args.get(i + 1).is_some_and(|v| !v.starts_with("--")),
                _ => true,
            };
            i += if has_value { 2 } else { 1 };
        } else {
            operands.push(&args[i]);
            i += 1;
        }
    }
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    for a in operands {
        let path = std::path::Path::new(a);
        if path.is_dir() {
            let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("reading {a}: {e}"))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            entries.sort(); // deterministic replay order
            paths.extend(entries);
        } else {
            paths.push(path.to_path_buf());
        }
    }
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let mut trace: ArrivalTrace = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not a valid trace: {e}", path.display()))?;
        trace
            .validate()
            .map_err(|e| format!("{} is not a valid trace: {e}", path.display()))?;
        if trace.name.is_empty() {
            trace.name = path.file_stem().map_or_else(
                || path.display().to_string(),
                |s| s.to_string_lossy().into(),
            );
        }
        traces.push(trace);
    }

    let gen_kind = args.iter().position(|a| a == "--gen").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "poisson".into())
    });
    if let Some(kind) = gen_kind {
        let kind: TraceKind = kind.parse()?;
        let count: usize = parse_flag(args, "--count", 2)?;
        let seed: u64 = parse_flag(args, "--seed", 0)?;
        let hetero: Option<u32> = match flag(args, "--hetero") {
            Some(v) => Some(
                v.parse()
                    .map_err(|e| format!("bad --hetero sleep-level count: {e}"))?,
            ),
            None => None,
        };
        let cfg = arrival_config(args)?;
        for i in 0..count {
            let trace_seed = seed.wrapping_add(i as u64);
            let mut rng = rand::rngs::StdRng::seed_from_u64(trace_seed);
            let mut trace = match hetero {
                Some(levels) => hetero_trace(kind, &cfg, levels, &mut rng),
                None => generate_trace(kind, &cfg, &mut rng),
            };
            trace.name = format!("{}-s{trace_seed}", trace.name);
            traces.push(trace);
        }
    }

    if traces.is_empty() {
        return Err("replay needs trace files, a directory, or --gen KIND".into());
    }
    Ok(traces)
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let metrics = metrics_registry(args);
    flush_metrics(metrics, replay_run(args))
}

fn replay_run(args: &[String]) -> Result<(), String> {
    let trace_out = trace_tracer(args);
    let traces = replay_traces(args)?;
    let policy: PolicyKind = flag(args, "--policy")
        .unwrap_or_else(|| "greedy".into())
        .parse()?;
    let offline: OfflineRef = flag(args, "--offline")
        .unwrap_or_else(|| "auto".into())
        .parse()?;
    let workers: usize = parse_flag(args, "--workers", 1)?;
    let verbose = args.iter().any(|a| a == "--verbose");

    let reports: Vec<ReplayReport> = if verbose || trace_out.is_some() {
        // Sequential so each report can be narrated with its machine-state
        // timeline, and so each trace gets its own `trace_id` on one
        // thread; the reports themselves are identical to the parallel
        // path (replay is deterministic).
        let mut out = Vec::with_capacity(traces.len());
        for trace in &traces {
            if trace_out.is_some() {
                obs::trace::set_trace_id(Some(&format!("replay-{}", trace.name)));
            }
            let mut p = policy.build(None);
            let (report, outcome) = replay_with_report(trace, p.as_mut(), offline)
                .map_err(|e| format!("replaying {}: {e}", trace.name))?;
            if verbose {
                eprintln!("{} [{}]:", trace.name, report.policy);
                eprint!("{}", outcome.power);
                if let Some(rs) = report.resolve_stats {
                    eprintln!(
                        "  re-solves: {} ({} warm, {} cold), total {:.2} ms, \
                         p50 {:.1} us, p99 {:.1} us",
                        rs.count,
                        rs.warm,
                        rs.cold,
                        rs.total_ns as f64 / 1e6,
                        rs.p50_ns as f64 / 1e3,
                        rs.p99_ns as f64 / 1e3,
                    );
                }
            }
            out.push(report);
        }
        obs::trace::set_trace_id(None);
        out
    } else {
        replay_fleet(&traces, &policy, &FleetOptions { workers, offline })
            .into_iter()
            .zip(&traces)
            .map(|(r, t)| r.map_err(|e| format!("replaying {}: {e}", t.name)))
            .collect::<Result<Vec<_>, _>>()?
    };

    let lines: Vec<String> = reports
        .iter()
        .map(|r| serde_json::to_string(r).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    write_responses(args, &lines)?;

    let mut table = bench::Table::new(&[
        "trace", "policy", "jobs", "sched", "drop", "online", "offline", "ref", "ratio",
        "restarts", "util", "events", "warm", "cold", "p50us",
    ]);
    for r in &reports {
        let (warm, cold, p50us) = match r.resolve_stats {
            Some(rs) => (
                rs.warm.to_string(),
                rs.cold.to_string(),
                format!("{:.1}", rs.p50_ns as f64 / 1e3),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.row(vec![
            r.trace.clone(),
            r.policy.clone(),
            r.jobs.to_string(),
            r.scheduled.to_string(),
            r.dropped.to_string(),
            format!("{:.2}", r.online_cost),
            format!("{:.2}", r.offline_cost),
            r.offline_ref.clone(),
            format!("{:.3}", r.ratio),
            r.restarts.to_string(),
            format!("{:.2}", r.utilization),
            r.events.to_string(),
            warm,
            cold,
            p50us,
        ]);
    }
    eprint!("{}", table.render());
    let worst = reports
        .iter()
        .map(|r| r.ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    let mean = reports.iter().map(|r| r.ratio).sum::<f64>() / reports.len() as f64;
    eprintln!(
        "replay: {} trace{} under {policy}: mean ratio {mean:.3}, worst {worst:.3}",
        reports.len(),
        if reports.len() == 1 { "" } else { "s" },
    );
    if let Some((path, tracer)) = &trace_out {
        write_trace(path, tracer)?;
    }
    Ok(())
}

/// Pretty-prints an `obs/v1` metrics snapshot file (as written by
/// `--metrics-out` or the serve shutdown flush) as the human text table.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: metrics SNAPSHOT.json")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snapshot = obs::Snapshot::from_json(&text)
        .map_err(|e| format!("{path}: not an obs/v1 snapshot: {e}"))?;
    print!("{}", snapshot.render_text());
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let operands: Vec<&String> = {
        // the only validate flag, --freq-ladder, consumes one value operand
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i].starts_with("--") {
                i += 2;
            } else {
                out.push(&args[i]);
                i += 1;
            }
        }
        out
    };
    let [inst_path, sched_path] = operands[..] else {
        return Err("usage: validate INSTANCE.json SCHEDULE.json [--freq-ladder FILE]".into());
    };
    let inst: Instance =
        serde_json::from_str(&std::fs::read_to_string(inst_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    inst.validate()
        .map_err(|e| format!("{inst_path} is not a valid instance: {e}"))?;
    if let Some(ladder_path) = flag(args, "--freq-ladder") {
        let restart: f64 =
            flag(args, "--restart").map_or(Ok(3.0), |v| v.parse().map_err(|e| format!("{e}")))?;
        let dvfs = DvfsInstance {
            num_processors: inst.num_processors,
            horizon: inst.horizon,
            wake_cost: restart,
            ladder: load_ladder(&ladder_path)?,
            jobs: inst.jobs,
        };
        dvfs.validate().map_err(|e| e.to_string())?;
        let sched: DvfsSchedule =
            serde_json::from_str(&std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
        if sched.assignments.len() != dvfs.jobs.len() {
            return Err(format!(
                "schedule has {} assignments but the instance has {} jobs",
                sched.assignments.len(),
                dvfs.jobs.len()
            ));
        }
        let violations = validate_dvfs_schedule(&dvfs, &sched);
        if violations.is_empty() {
            println!("schedule is valid");
            return Ok(());
        }
        return Err(format!("schedule invalid: {violations:?}"));
    }
    let sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    if sched.assignments.len() != inst.num_jobs() {
        return Err(format!(
            "schedule has {} assignments but the instance has {} jobs",
            sched.assignments.len(),
            inst.num_jobs()
        ));
    }
    let violations = validate_schedule(&inst, &sched);
    if violations.is_empty() {
        println!("schedule is valid");
        Ok(())
    } else {
        Err(format!("schedule invalid: {violations:?}"))
    }
}
