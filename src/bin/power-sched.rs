//! `power-sched` — command-line front end for the scheduling library.
//!
//! ```text
//! power-sched generate --seed 7 --processors 2 --horizon 16 --jobs 12 --out inst.json
//! power-sched solve inst.json --restart 3 --rate 1 [--target 25.5] [--out sched.json]
//! power-sched validate inst.json sched.json
//! power-sched batch requests.jsonl [--workers N] [--out responses.jsonl]
//! power-sched batch requests.jsonl --connect HOST:PORT [--shutdown]
//! power-sched serve --addr 127.0.0.1:7171 [--workers N]
//! ```
//!
//! Instances and schedules are serialized with serde as plain JSON, so they
//! round-trip through scripts and other tooling. `batch` and `serve` speak
//! the versioned JSONL wire protocol of the `sched-engine` crate: one
//! request object per line, one response line per request, in input order.
//! `batch --connect` turns the same subcommand into a TCP client, which is
//! how scripts drive (and gracefully shut down, via `--shutdown`) a running
//! `serve` instance.

use power_scheduling::engine::{serve, Engine, EngineConfig};
use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use power_scheduling::scheduling::simulate::simulate;
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{planted_instance, PlantedConfig};
use rand::SeedableRng;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: power-sched <generate|solve|validate|batch|serve> ...\n\
                 \n  generate --seed S --processors P --horizon T --jobs N [--values V] --out FILE\
                 \n  solve INSTANCE.json [--restart A] [--rate R] [--target Z] [--policy all|single|maxlen:K] [--out FILE]\
                 \n  validate INSTANCE.json SCHEDULE.json\
                 \n  batch [REQUESTS.jsonl|-] [--workers N] [--queue D] [--out FILE]\
                 \n  batch [REQUESTS.jsonl|-] --connect HOST:PORT [--shutdown] [--out FILE]\
                 \n  serve --addr HOST:PORT [--workers N] [--queue D]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let seed: u64 =
        flag(args, "--seed").map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let processors: u32 =
        flag(args, "--processors").map_or(Ok(2), |v| v.parse().map_err(|e| format!("{e}")))?;
    let horizon: u32 =
        flag(args, "--horizon").map_or(Ok(16), |v| v.parse().map_err(|e| format!("{e}")))?;
    let jobs: usize =
        flag(args, "--jobs").map_or(Ok(12), |v| v.parse().map_err(|e| format!("{e}")))?;
    let values: u32 =
        flag(args, "--values").map_or(Ok(1), |v| v.parse().map_err(|e| format!("{e}")))?;
    let out = flag(args, "--out").ok_or("--out FILE is required")?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let p = planted_instance(
        &PlantedConfig {
            num_processors: processors,
            horizon,
            target_jobs: jobs,
            decoy_prob: 0.3,
            max_value: values,
            cost_model: PlantedCostModel::Affine { restart: 3.0 },
            policy: CandidatePolicy::All,
        },
        &mut rng,
    );
    let json = serde_json::to_string_pretty(&p.instance).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} jobs, {} processors, horizon {}; planted feasible cost {:.2})",
        out,
        p.instance.num_jobs(),
        p.instance.num_processors,
        p.instance.horizon,
        p.planted_cost
    );
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing INSTANCE.json")?;
    let restart: f64 =
        flag(args, "--restart").map_or(Ok(3.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let rate: f64 =
        flag(args, "--rate").map_or(Ok(1.0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let policy: CandidatePolicy = flag(args, "--policy")
        .unwrap_or_else(|| "all".into())
        .parse()?;
    let target: Option<f64> = match flag(args, "--target") {
        Some(v) => Some(v.parse().map_err(|e| format!("{e}"))?),
        None => None,
    };

    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let inst: Instance =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a valid instance: {e}"))?;
    // Deserialization builds the struct without running Instance::new's
    // checks; validate before the solver indexes slots by id.
    inst.validate()
        .map_err(|e| format!("{path} is not a valid instance: {e}"))?;
    let cost = AffineCost::new(restart, rate);
    let solver = Solver::new(&inst, &cost).policy(policy);

    let schedule = match target {
        Some(z) => solver.prize_collecting_exact(z),
        None => solver.schedule_all(),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "scheduled {}/{} jobs (value {:.1}) at energy cost {:.2} with {} awake intervals",
        schedule.scheduled_count,
        inst.num_jobs(),
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    print!("{}", simulate(&inst, &schedule).render());

    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Reads the JSONL request text: a file path, or stdin for `-`/no operand.
fn read_requests(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(text)
        }
        Some(path) if path.starts_with("--") => Err(format!(
            "batch expects the requests file before flags, found '{path}'"
        )),
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

/// Writes response lines to `--out FILE`, or stdout for `-`/no flag.
fn write_responses(args: &[String], lines: &[String]) -> Result<(), String> {
    let body = if lines.is_empty() {
        String::new()
    } else {
        format!("{}\n", lines.join("\n"))
    };
    match flag(args, "--out") {
        None => {
            print!("{body}");
            Ok(())
        }
        Some(ref out) if out == "-" => {
            print!("{body}");
            Ok(())
        }
        Some(out) => {
            std::fs::write(&out, body).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {} responses to {out}", lines.len());
            Ok(())
        }
    }
}

fn engine_config(args: &[String]) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default();
    if let Some(w) = flag(args, "--workers") {
        cfg.workers = w.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(q) = flag(args, "--queue") {
        cfg.queue_depth = q.parse().map_err(|e| format!("bad --queue: {e}"))?;
    }
    Ok(cfg)
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let text = read_requests(args)?;
    let out_lines = match flag(args, "--connect") {
        Some(addr) => batch_over_tcp(&text, &addr, args.iter().any(|a| a == "--shutdown"))?,
        None => {
            let engine = Engine::new(engine_config(args)?);
            let responses = engine.process_lines(text.lines());
            let (ok, failed) = responses.iter().fold((0, 0), |(ok, failed), r| {
                if r.ok {
                    (ok + 1, failed)
                } else {
                    (ok, failed + 1)
                }
            });
            eprintln!(
                "batch: {ok} solved, {failed} failed on {} workers",
                engine.workers()
            );
            responses
                .iter()
                .map(|r| serde_json::to_string(r).map_err(|e| e.to_string()))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    write_responses(args, &out_lines)
}

/// Client mode: stream the request lines to a `power-sched serve` instance
/// and collect one response line per non-blank request line (plus the
/// shutdown acknowledgement when `--shutdown` is set).
fn batch_over_tcp(text: &str, addr: &str, shutdown: bool) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let reader = BufReader::new(stream);

    let mut expected = text.lines().filter(|l| !l.trim().is_empty()).count();
    if shutdown {
        expected += 1;
    }
    if expected == 0 {
        // Nothing to send means nothing to wait for; entering the read loop
        // would block forever (neither side would ever write).
        return Ok(Vec::new());
    }
    std::thread::scope(|scope| -> Result<Vec<String>, String> {
        // Writer runs concurrently so a large pipelined batch cannot
        // deadlock against the server's responses.
        let sender = scope.spawn(move || -> Result<(), String> {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                writeln!(writer, "{line}").map_err(|e| format!("sending request: {e}"))?;
            }
            if shutdown {
                writeln!(
                    writer,
                    "{{\"version\":{PROTOCOL_VERSION},\"control\":\"shutdown\"}}"
                )
                .map_err(|e| format!("sending shutdown: {e}"))?;
            }
            writer.flush().map_err(|e| format!("sending requests: {e}"))
        });

        let mut out = Vec::with_capacity(expected);
        for line in reader.lines() {
            let line = line.map_err(|e| format!("reading response: {e}"))?;
            out.push(line);
            if out.len() == expected {
                break;
            }
        }
        sender
            .join()
            .map_err(|_| "request sender panicked".to_string())??;
        if out.len() < expected {
            return Err(format!(
                "server closed the connection after {} of {expected} responses",
                out.len()
            ));
        }
        Ok(out)
    })
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let cfg = engine_config(args)?;
    let listener = TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Scripts wait for this exact line before connecting.
    println!("power-sched serve: listening on {local}");
    std::io::stdout().flush().ok();
    serve(listener, cfg).map_err(|e| format!("serve loop: {e}"))?;
    println!("power-sched serve: shutdown complete");
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let [inst_path, sched_path] = args else {
        return Err("usage: validate INSTANCE.json SCHEDULE.json".into());
    };
    let inst: Instance =
        serde_json::from_str(&std::fs::read_to_string(inst_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    inst.validate()
        .map_err(|e| format!("{inst_path} is not a valid instance: {e}"))?;
    let sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(sched_path).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
    if sched.assignments.len() != inst.num_jobs() {
        return Err(format!(
            "schedule has {} assignments but the instance has {} jobs",
            sched.assignments.len(),
            inst.num_jobs()
        ));
    }
    let violations = validate_schedule(&inst, &sched);
    if violations.is_empty() {
        println!("schedule is valid");
        Ok(())
    } else {
        Err(format!("schedule invalid: {violations:?}"))
    }
}
