//! End-to-end tests of the structured tracing layer: a Chrome trace
//! exported from a warm-resolve replay must contain correctly *nested*
//! spans (the solve span's interval contains the reduction build and the
//! gain scan) that all share one `trace_id`, and a `trace_id` sent over a
//! real TCP `serve` round-trip must come back on the response — on
//! failures too.

use power_scheduling::engine::{SolveResponse, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_power-sched"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("power-sched-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Raw JSON document, for navigating the Chrome export without a schema
/// (the vendored serde stub has no untyped-`Value` entry point of its own).
struct Raw(serde::Value);

impl serde::Deserialize for Raw {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Raw(v.clone()))
    }
}

/// Minimal view of one Chrome trace event — only what the assertions need.
#[derive(Debug)]
struct ChromeEvent {
    name: String,
    ph: String,
    tid: u64,
    ts: f64,
    dur: f64,
    trace_id: String,
}

impl ChromeEvent {
    fn parse(v: &serde::Value) -> Self {
        let s = |key: &str| -> String {
            match v.field(key) {
                Ok(serde::Value::Str(s)) => s.clone(),
                other => panic!("event field {key} must be a string, got {other:?}"),
            }
        };
        let n = |key: &str| -> f64 {
            match v.field(key) {
                Ok(serde::Value::Num(n)) => *n,
                // `dur` is absent on instants
                _ => 0.0,
            }
        };
        let trace_id = match v.field("args").and_then(|a| a.field("trace_id")) {
            Ok(serde::Value::Str(s)) => s.clone(),
            other => panic!("every event must carry args.trace_id, got {other:?}"),
        };
        ChromeEvent {
            name: s("name"),
            ph: s("ph"),
            tid: n("tid") as u64,
            ts: n("ts"),
            dur: n("dur"),
            trace_id,
        }
    }

    /// Closed-interval containment on the µs timeline, same thread.
    fn contains(&self, inner: &ChromeEvent) -> bool {
        self.tid == inner.tid && self.ts <= inner.ts && inner.ts + inner.dur <= self.ts + self.dur
    }
}

#[test]
fn warm_replay_chrome_trace_has_nested_spans_under_one_trace_id() {
    let dir = temp_dir("nesting");
    let trace_path = dir.join("replay.json");
    let out = bin()
        .args([
            "replay",
            "--gen",
            "--count",
            "1",
            "--policy",
            "resolve:4:warm",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn replay");
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    let raw: Raw = serde_json::from_str(&text).expect("chrome trace parses");
    let events: Vec<ChromeEvent> = match raw.0.field("traceEvents") {
        Ok(serde::Value::Array(items)) => items.iter().map(ChromeEvent::parse).collect(),
        other => panic!("export must carry a traceEvents array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must carry events");

    // One replayed trace => exactly one non-empty trace id, on every event.
    let ids: std::collections::BTreeSet<&str> =
        events.iter().map(|e| e.trace_id.as_str()).collect();
    assert_eq!(ids.len(), 1, "one trace id end-to-end, got {ids:?}");
    let id = ids.iter().next().unwrap();
    assert!(id.starts_with("replay-"), "replay stamps its ids: {id}");

    // Nesting: every reduction build and every gain scan lies inside some
    // solve span on the same thread (`ph:"X"` complete events). Cold solves
    // nest under `core.solve.schedule_all_ns`; the warm handle rebuilds its
    // reduction inside `core.warm.solve_ns` before entering the seeded
    // solve, so both count as the enclosing solve.
    let solves: Vec<&ChromeEvent> = events
        .iter()
        .filter(|e| {
            e.ph == "X"
                && (e.name == "core.solve.schedule_all_ns" || e.name == "core.warm.solve_ns")
        })
        .collect();
    assert!(!solves.is_empty(), "warm replay records solve spans");
    for inner_name in ["core.reduction.build_ns", "core.objective.scan_gains_ns"] {
        let inners: Vec<&ChromeEvent> = events
            .iter()
            .filter(|e| e.ph == "X" && e.name == inner_name)
            .collect();
        assert!(!inners.is_empty(), "warm replay records {inner_name}");
        for inner in inners {
            assert!(
                solves.iter().any(|s| s.contains(inner)),
                "{inner_name} at ts {} must nest inside a solve span",
                inner.ts
            );
        }
    }

    // The greedy decision log rides the same timeline.
    assert!(
        events
            .iter()
            .any(|e| e.ph == "i" && e.name == "submodular.greedy.pick"),
        "pick instants must be on the timeline"
    );
}

#[test]
fn trace_id_round_trips_through_a_tcp_serve_session() {
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn power-sched serve");
    let stdout = child.stdout.as_mut().expect("piped stdout");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read listen banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("banner ends with the address")
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    // Tagged request, untagged request, malformed-but-correlatable line
    // (valid JSON that fails request parsing, so the correlation keys are
    // still recoverable), then shutdown.
    let inst =
        r#"{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]}"#;
    writeln!(
        writer,
        "{{\"version\":{PROTOCOL_VERSION},\"id\":1,\"mode\":\"ScheduleAll\",\"instance\":{inst},\"restart\":3,\"rate\":1,\"trace_id\":\"e2e-tagged\"}}"
    )
    .unwrap();
    writeln!(
        writer,
        "{{\"version\":{PROTOCOL_VERSION},\"id\":2,\"mode\":\"ScheduleAll\",\"instance\":{inst},\"restart\":3,\"rate\":1}}"
    )
    .unwrap();
    writeln!(
        writer,
        "{{\"version\":{PROTOCOL_VERSION},\"id\":3,\"trace_id\":\"e2e-bad\",\"mode\":\"NoSuchMode\"}}"
    )
    .unwrap();
    writeln!(
        writer,
        "{{\"version\":{PROTOCOL_VERSION},\"control\":\"shutdown\"}}"
    )
    .unwrap();
    writer.flush().unwrap();

    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        lines.push(line);
    }
    let responses: Vec<SolveResponse> = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("response parses"))
        .collect();

    assert!(responses[0].ok);
    assert_eq!(responses[0].trace_id.as_deref(), Some("e2e-tagged"));
    assert!(responses[1].ok);
    assert_eq!(
        responses[1].trace_id.as_deref(),
        Some("req-2"),
        "engine stamps a deterministic id when the client sends none"
    );
    assert!(!responses[2].ok, "malformed request must fail");
    assert_eq!(
        responses[2].trace_id.as_deref(),
        Some("e2e-bad"),
        "even unparseable lines echo their trace id back"
    );
    assert_eq!(responses[2].id, 3);
    assert!(responses[3].ok, "shutdown ack");

    let status = child.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown exits 0");
}
