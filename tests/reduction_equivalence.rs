//! Integration: the Appendix .1 Set-Cover ↔ scheduling reduction preserves
//! optima and greedy behaviour end-to-end.

use power_scheduling::prelude::*;
use power_scheduling::submodular::setcover::{exact_set_cover, greedy_set_cover, SetCoverInstance};
use power_scheduling::workloads::{greedy_lower_bound_family, set_cover_to_scheduling};
use rand::{Rng, SeedableRng};

#[test]
fn reduction_optima_agree_on_random_instances() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for _ in 0..10 {
        let n = rng.gen_range(3..8usize);
        let m = rng.gen_range(2..6usize);
        let mut sets: Vec<Vec<u32>> = (0..m)
            .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect())
            .collect();
        sets.push((0..n as u32).collect());
        let sc = SetCoverInstance::unit_costs(n, sets);
        let (inst, cands) = set_cover_to_scheduling(&sc);

        let (_, sc_opt) = exact_set_cover(&sc).unwrap();
        let sched_opt = power_scheduling::baselines::exact_schedule_all(&inst, &cands, 8_000_000)
            .expect("coverable instance must be schedulable");
        assert_eq!(
            sc_opt, sched_opt.cost,
            "reduction must preserve the optimum"
        );
    }
}

#[test]
fn scheduling_greedy_log_trap_materializes() {
    // On the tight family, OPT = 2 but the greedy pays ≥ k: the Set-Cover
    // lower bound carried through the reduction.
    for k in 2..=7u32 {
        let sc = greedy_lower_bound_family(k);
        let (inst, cands) = set_cover_to_scheduling(&sc);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        assert!(s.total_cost >= k as f64);
        // and the pure set-cover greedy pays the same
        let scg = greedy_set_cover(&sc);
        assert_eq!(s.total_cost, scg.cost);
    }
}

#[test]
fn one_processor_multi_interval_is_setcover_shaped() {
    // Multi-interval single-processor instances embed set cover too (the
    // other hardness direction, Thm .1.1): verify the greedy solves a small
    // embedded instance correctly rather than degenerating.
    // universe {0,1,2}: sets {0,1} -> windows {0,1}, {2} -> {2}, {0,2} -> {0,2}
    // as time slots of one processor; each "set" becomes a candidate interval
    // family — here we just check the scheduling greedy matches exact search.
    let inst = Instance::new(
        1,
        6,
        vec![
            Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(0, 3)]),
            Job::unit(vec![SlotRef::new(0, 1), SlotRef::new(0, 4)]),
            Job::unit(vec![SlotRef::new(0, 5)]),
        ],
    );
    let cost = AffineCost::new(2.0, 1.0);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let g = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    let ex = power_scheduling::baselines::exact_schedule_all(&inst, &cands, 8_000_000).unwrap();
    assert!(g.total_cost >= ex.cost - 1e-9);
    let n = inst.num_jobs() as f64;
    assert!(g.total_cost <= 2.0 * (n + 1.0).log2().ceil() * ex.cost + 1e-9);
}
