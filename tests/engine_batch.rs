//! End-to-end tests of `power-sched batch`: mixed-mode JSONL workloads
//! through the real binary, checking that responses come back in input
//! order and that every cost is bit-identical to a direct sequential
//! `Solver` call — the engine's sharding must never change results.

use power_scheduling::engine::{SolveMode, SolveRequest, SolveResponse};
use power_scheduling::prelude::*;
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{planted_instance, PlantedConfig};
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("power-sched-batch-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A deterministic mixed-mode workload over planted (feasible) instances,
/// cycling through solve modes, grids, and candidate policies.
fn mixed_requests(n: usize, seed: u64) -> Vec<SolveRequest> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let horizon = 8 + (i % 3) as u32 * 2;
            let planted = planted_instance(
                &PlantedConfig {
                    num_processors: 1 + (i % 2) as u32,
                    horizon,
                    target_jobs: 5 + i % 4,
                    decoy_prob: 0.25,
                    max_value: 3,
                    cost_model: PlantedCostModel::Affine { restart: 4.0 },
                    policy: CandidatePolicy::All,
                },
                &mut rng,
            );
            let inst = planted.instance;
            let total = inst.total_value();
            let mut builder = SolveRequest::builder(i as u64, inst).affine(4.0, 1.0);
            builder = match i % 3 {
                0 => builder,
                1 => builder
                    .prize_collecting((total * 0.5).max(1.0))
                    .epsilon(0.25),
                _ => builder.prize_collecting_exact((total * 0.4).max(1.0)),
            };
            if i % 5 == 0 {
                builder = builder.policy("maxlen:6");
            }
            builder.build()
        })
        .collect()
}

/// What the engine is specified to compute for `req`: a plain sequential
/// `Solver` call with the same policy/options.
fn direct_solve(req: &SolveRequest) -> Result<Schedule, ScheduleError> {
    let cost = AffineCost::new(req.restart, req.rate);
    let policy: CandidatePolicy = req
        .policy
        .as_deref()
        .unwrap_or("all")
        .parse()
        .expect("test policies are valid");
    let solver = Solver::new(&req.instance, &cost).policy(policy);
    match req.mode {
        SolveMode::ScheduleAll => solver.schedule_all(),
        SolveMode::PrizeCollecting => {
            solver.prize_collecting(req.target.unwrap(), req.epsilon.unwrap_or(0.1))
        }
        SolveMode::PrizeCollectingExact => solver.prize_collecting_exact(req.target.unwrap()),
    }
}

fn run_batch(input: &Path, out: &Path, workers: u32) -> Vec<SolveResponse> {
    let output = Command::new(env!("CARGO_BIN_EXE_power-sched"))
        .args([
            "batch",
            input.to_str().unwrap(),
            "--workers",
            &workers.to_string(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("spawn power-sched batch");
    assert!(
        output.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::read_to_string(out)
        .expect("read responses")
        .lines()
        .map(|l| serde_json::from_str(l).expect("every output line is a SolveResponse"))
        .collect()
}

fn write_requests(dir: &Path, name: &str, requests: &[SolveRequest]) -> PathBuf {
    let path = dir.join(name);
    let body: String = requests
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    std::fs::write(&path, body).expect("write requests");
    path
}

#[test]
fn fifty_mixed_requests_in_order_matching_direct_solver_calls() {
    let dir = temp_dir("fifty");
    let requests = mixed_requests(50, 0xBA7C4);
    let input = write_requests(&dir, "reqs.jsonl", &requests);
    let responses = run_batch(&input, &dir.join("resp.jsonl"), 4);

    assert_eq!(responses.len(), 50);
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(resp.id, req.id, "responses must arrive in input order");
        match direct_solve(req) {
            Ok(direct) => {
                assert!(
                    resp.ok,
                    "request {} unexpectedly failed: {:?}",
                    req.id, resp.error
                );
                let got = resp.schedule.as_ref().unwrap();
                assert_eq!(
                    got.total_cost.to_bits(),
                    direct.total_cost.to_bits(),
                    "request {}: engine cost {} != direct cost {}",
                    req.id,
                    got.total_cost,
                    direct.total_cost
                );
                assert_eq!(got.scheduled_count, direct.scheduled_count);
            }
            Err(_) => assert!(
                !resp.ok,
                "request {} must fail like the direct call",
                req.id
            ),
        }
        let metrics = resp.metrics.expect("success responses carry metrics");
        assert!(u64::from(metrics.worker) < 4);
    }
}

/// The acceptance workload: 200 mixed-mode requests; 1-worker and 4-worker
/// runs must produce bit-identical costs, both equal to sequential solves.
#[test]
fn two_hundred_requests_bit_identical_across_worker_counts() {
    let dir = temp_dir("acceptance");
    let requests = mixed_requests(200, 0xACCE5);
    let input = write_requests(&dir, "reqs.jsonl", &requests);

    let one = run_batch(&input, &dir.join("resp1.jsonl"), 1);
    let four = run_batch(&input, &dir.join("resp4.jsonl"), 4);
    assert_eq!(one.len(), 200);
    assert_eq!(four.len(), 200);

    for ((req, r1), r4) in requests.iter().zip(&one).zip(&four) {
        assert_eq!(r1.id, req.id);
        assert_eq!(r4.id, req.id);
        assert_eq!(
            r1.ok, r4.ok,
            "request {}: ok diverged across worker counts",
            req.id
        );
        if let (Some(s1), Some(s4)) = (&r1.schedule, &r4.schedule) {
            assert_eq!(
                s1.total_cost.to_bits(),
                s4.total_cost.to_bits(),
                "request {}: cost diverged across worker counts",
                req.id
            );
            let direct = direct_solve(req).expect("solvable in the 1-worker run");
            assert_eq!(s1.total_cost.to_bits(), direct.total_cost.to_bits());
        }
    }
}

#[test]
fn batch_reads_stdin_and_reports_parallel_option_requests() {
    use std::io::Write;
    let requests = {
        let mut reqs = mixed_requests(6, 0x57D1);
        for r in &mut reqs {
            r.parallel = Some(true); // exercise SolveOptions.parallel through the pool
        }
        reqs
    };
    let mut child = Command::new(env!("CARGO_BIN_EXE_power-sched"))
        .args(["batch", "-", "--workers", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn power-sched batch -");
    {
        let stdin = child.stdin.as_mut().unwrap();
        for r in &requests {
            writeln!(stdin, "{}", serde_json::to_string(r).unwrap()).unwrap();
        }
    }
    let output = child.wait_with_output().expect("batch over stdin");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    let responses: Vec<SolveResponse> = stdout
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 6);
    for (req, resp) in requests.iter().zip(&responses) {
        assert!(resp.ok, "{:?}", resp.error);
        let direct = direct_solve(req).unwrap();
        assert_eq!(
            resp.schedule.as_ref().unwrap().total_cost.to_bits(),
            direct.total_cost.to_bits(),
            "parallel scans must not change results"
        );
    }
}
