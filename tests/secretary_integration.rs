//! Integration: Chapter 3 algorithms on generated workloads against offline
//! references, including the scheduling-flavored "processors arrive online"
//! story from the paper's introduction.

use power_scheduling::matroids::{Matroid, PartitionMatroid, UniformMatroid};
use power_scheduling::secretary::{
    knapsack_secretary, matroid_submodular_secretary, nonmonotone_submodular_secretary,
    offline_greedy, offline_matroid_greedy, random_stream, submodular_secretary, KnapsackInstance,
};
use power_scheduling::submodular::functions::CoverageFn;
use power_scheduling::submodular::{BitSet, SetFn};
use power_scheduling::workloads::secretary_streams::{
    heavy_tail_additive, random_coverage, random_cut,
};
use rand::SeedableRng;

fn eval<F: SetFn + ?Sized>(f: &F, set: &[u32]) -> f64 {
    f.eval(&BitSet::from_iter(f.ground_size(), set.iter().copied()))
}

#[test]
fn processors_arrive_online_scheduling_story() {
    // The paper's motivating story: tasks are fixed, processors (secretaries)
    // arrive online; hire k of them to maximize tasks done. Utility of a
    // processor set = tasks coverable — a coverage function.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let num_tasks = 40;
    let num_processors = 80;
    // each processor can execute a random subset of tasks
    let f = random_coverage(num_processors, num_tasks, 0.1, &mut rng);
    let k = 6;
    let (_, offline) = offline_greedy(&f, k);
    let trials = 400;
    let mut total = 0.0;
    for _ in 0..trials {
        let s = random_stream(num_processors, &mut rng);
        let hired = submodular_secretary(&f, &s, k);
        assert!(hired.len() <= k);
        total += eval(&f, &hired);
    }
    let ratio = total / trials as f64 / offline;
    let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);
    assert!(ratio >= bound, "online hiring ratio {ratio} below bound");
}

#[test]
fn all_algorithms_respect_their_constraints() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let n = 50;
    let f = random_coverage(n, 30, 0.1, &mut rng);
    let cut = random_cut(n, 200, 4, &mut rng);
    let uni = UniformMatroid::new(n, 5);
    let part = PartitionMatroid::new((0..n as u32).map(|e| e % 4).collect(), vec![2; 4]);
    let ms: Vec<&dyn Matroid> = vec![&uni, &part];
    let add = heavy_tail_additive(n, &mut rng);
    let ki = {
        use rand::Rng;
        KnapsackInstance::new(
            vec![(0..n).map(|_| rng.gen_range(0.1..1.0)).collect()],
            vec![2.0],
        )
    };

    for _ in 0..50 {
        let s = random_stream(n, &mut rng);
        let h1 = submodular_secretary(&f, &s, 7);
        assert!(h1.len() <= 7);
        let h2 = nonmonotone_submodular_secretary(&cut, &s, 7, &mut rng);
        assert!(h2.len() <= 7);
        let h3 = matroid_submodular_secretary(&f, &s, &ms, &mut rng);
        assert!(power_scheduling::matroids::independent_in_all(&ms, &h3));
        let h4 = knapsack_secretary(&add, &ki, &s, &mut rng);
        assert!(ki.feasible(&h4));
    }
}

#[test]
fn matroid_secretary_beats_nominal_bound_on_two_matroids() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let n = 60;
    let f = random_coverage(n, 40, 0.12, &mut rng);
    let uni = UniformMatroid::new(n, 6);
    let part = PartitionMatroid::new((0..n as u32).map(|e| e % 5).collect(), vec![2; 5]);
    let ms: Vec<&dyn Matroid> = vec![&uni, &part];
    let (_, offline) = offline_matroid_greedy(&f, &ms);
    assert!(offline > 0.0);
    let trials = 400;
    let mut total = 0.0;
    for _ in 0..trials {
        let s = random_stream(n, &mut rng);
        let hired = matroid_submodular_secretary(&f, &s, &ms, &mut rng);
        total += eval(&f, &hired);
    }
    let ratio = total / trials as f64 / offline;
    let l = 2.0;
    let r = power_scheduling::matroids::max_rank(&ms) as f64;
    let nominal = 1.0 / (8.0 * std::f64::consts::E * l * r.log2().max(1.0).powi(2));
    assert!(
        ratio >= nominal,
        "ratio {ratio} below Θ(1/(l log² r)) shape {nominal}"
    );
}

#[test]
fn monotone_secretary_with_identity_coverage_behaves_like_topk() {
    // identity coverage: f additive 0/1 — algorithm should hire close to k
    // items on long streams
    let n = 90;
    let f = CoverageFn::unweighted(n, (0..n).map(|i| vec![i as u32]).collect());
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let k = 6;
    let mut hires = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let s = random_stream(n, &mut rng);
        hires += submodular_secretary(&f, &s, k).len();
    }
    let avg = hires as f64 / trials as f64;
    // each segment hires with probability ≥ 1 − 1/e-ish; expect > k/2 on average
    assert!(avg > k as f64 / 2.0, "average hires {avg} too low");
}
