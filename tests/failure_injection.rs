//! Failure injection: malformed cost oracles, degenerate instances, and
//! adversarial candidate families must fail loudly and precisely — never
//! return a silently-wrong schedule.

use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;

/// A cost oracle that returns NaN for some intervals.
struct NanCost;
impl EnergyCost for NanCost {
    fn cost(&self, _p: u32, start: u32, _e: u32) -> f64 {
        if start == 1 {
            f64::NAN
        } else {
            1.0
        }
    }
}

/// A cost oracle that returns zero (violates the strictly-positive
/// contract that the greedy's ratio rule needs).
struct ZeroCost;
impl EnergyCost for ZeroCost {
    fn cost(&self, _p: u32, _s: u32, _e: u32) -> f64 {
        0.0
    }
}

/// Negative costs.
struct NegativeCost;
impl EnergyCost for NegativeCost {
    fn cost(&self, _p: u32, _s: u32, _e: u32) -> f64 {
        -3.0
    }
}

fn one_job_instance() -> Instance {
    Instance::new(1, 3, vec![Job::unit(vec![SlotRef::new(0, 0)])])
}

#[test]
#[should_panic(expected = "invalid cost")]
fn nan_cost_rejected_at_enumeration() {
    enumerate_candidates(&one_job_instance(), &NanCost, CandidatePolicy::All);
}

#[test]
#[should_panic(expected = "invalid cost")]
fn zero_cost_rejected_at_enumeration() {
    enumerate_candidates(&one_job_instance(), &ZeroCost, CandidatePolicy::All);
}

#[test]
#[should_panic(expected = "invalid cost")]
fn negative_cost_rejected_at_enumeration() {
    enumerate_candidates(&one_job_instance(), &NegativeCost, CandidatePolicy::All);
}

#[test]
fn empty_candidate_family_is_infeasible_not_wrong() {
    let inst = one_job_instance();
    let err = schedule_all(&inst, &[], &SolveOptions::default()).unwrap_err();
    assert!(matches!(err, ScheduleError::Infeasible { .. }));
}

#[test]
fn candidates_missing_the_needed_slot_give_certificate() {
    let inst = one_job_instance(); // job pinned at (0,0)
    let cands = vec![CandidateInterval {
        proc: 0,
        start: 1,
        end: 3,
        cost: 2.0,
    }];
    match schedule_all(&inst, &cands, &SolveOptions::default()) {
        Err(ScheduleError::Infeasible { certificate, .. }) => {
            assert_eq!(certificate, vec![0], "the pinned job must be named");
        }
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn prize_target_barely_above_total_rejected() {
    let inst = Instance::new(1, 2, vec![Job::window(2.0, 0, 0, 2)]);
    let cost = AffineCost::new(1.0, 1.0);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let err =
        prize_collecting(&inst, &cands, 2.0 + 1e-6, 0.1, &SolveOptions::default()).unwrap_err();
    assert!(matches!(err, ScheduleError::TargetExceedsTotalValue { .. }));
    // and exactly the total is fine
    let ok = prize_collecting_exact(&inst, &cands, 2.0, &SolveOptions::default()).unwrap();
    assert_eq!(ok.scheduled_value, 2.0);
}

#[test]
fn duplicate_candidates_are_harmless() {
    let inst = one_job_instance();
    let iv = CandidateInterval {
        proc: 0,
        start: 0,
        end: 1,
        cost: 2.0,
    };
    let cands = vec![iv, iv, iv];
    let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s.total_cost, 2.0);
    assert_eq!(s.awake.len(), 1, "greedy must not buy redundant copies");
    assert!(validate_schedule(&inst, &s).is_empty());
}

#[test]
fn overlapping_candidates_do_not_double_schedule() {
    // two jobs share window [0,2); candidates overlap heavily
    let inst = Instance::new(
        1,
        2,
        vec![Job::window(1.0, 0, 0, 2), Job::window(1.0, 0, 0, 2)],
    );
    let cost = AffineCost::new(0.5, 1.0);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s.scheduled_count, 2);
    let slots: Vec<_> = s.assignments.iter().flatten().collect();
    assert_ne!(slots[0], slots[1], "slot collision");
    assert!(validate_schedule(&inst, &s).is_empty());
}

#[test]
fn zero_horizon_instance_only_schedules_nothing() {
    let inst = Instance::new(2, 0, vec![]);
    let cost = AffineCost::new(1.0, 1.0);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    assert!(cands.is_empty());
    let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s.total_cost, 0.0);
}

#[test]
fn huge_value_spread_still_exact() {
    // Δ = 10^9: numerically stressful for the ε = v_min/(n·v_max) slack
    let inst = Instance::new(
        1,
        3,
        vec![Job::window(1.0, 0, 0, 3), Job::window(1e9, 0, 0, 3)],
    );
    let cost = AffineCost::new(1.0, 1.0);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let s = prize_collecting_exact(&inst, &cands, 1e9 + 1.0, &SolveOptions::default()).unwrap();
    assert_eq!(s.scheduled_value, 1e9 + 1.0);
    assert_eq!(s.scheduled_count, 2);
}
