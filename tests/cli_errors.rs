//! Regression tests for CLI error handling: malformed JSON and invalid
//! instances must produce structured errors — never a panic — with a
//! nonzero exit for `solve` and in-band error responses for `batch`.

use power_scheduling::engine::{ErrorKind, SolveResponse};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_power-sched"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("power-sched-errors-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn assert_clean_failure(out: &Output) {
    assert!(!out.status.success(), "expected a nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:"),
        "expected a structured error line, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "CLI must not panic on bad input: {stderr}"
    );
}

#[test]
fn solve_rejects_truncated_json_without_panicking() {
    let dir = temp_dir("truncated");
    let path = dir.join("trunc.json");
    // a real instance file chopped mid-string
    std::fs::write(&path, r#"{"num_processors":2,"horizon":8,"jobs":[{"va"#).unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .expect("spawn solve");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a valid instance"));
}

#[test]
fn solve_rejects_out_of_range_slots_without_panicking() {
    let dir = temp_dir("oob");
    let path = dir.join("oob.json");
    // parses fine, but job 0 points outside the grid — would panic deep in
    // the matching reduction if solved unchecked
    std::fs::write(
        &path,
        r#"{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":9}]}]}"#,
    )
    .unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .expect("spawn solve");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("out-of-range slot"));
}

#[test]
fn solve_rejects_non_positive_values_without_panicking() {
    let dir = temp_dir("negval");
    let path = dir.join("neg.json");
    std::fs::write(
        &path,
        r#"{"num_processors":1,"horizon":2,"jobs":[{"value":-1,"allowed":[]}]}"#,
    )
    .unwrap();
    let out = bin()
        .args(["solve", path.to_str().unwrap()])
        .output()
        .expect("spawn solve");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid value"));
}

#[test]
fn replay_rejects_malformed_policy_suffixes_without_panicking() {
    // regression: every malformed --policy suffix must exit nonzero with a
    // parse message, never a panic — including suffixes that parse as the
    // right type but violate the policy's domain (resolve:0, hiring:2.0)
    for bad in ["hiring:x", "resolve:0", "resolve:x", "hiring:2.0", "bogus"] {
        let out = bin()
            .args([
                "replay", "--gen", "poisson", "--count", "1", "--seed", "1", "--policy", bad,
            ])
            .output()
            .expect("spawn replay");
        assert_clean_failure(&out);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("policy") || stderr.contains("period") || stderr.contains("fraction"),
            "--policy {bad}: error must name the bad input, got: {stderr}"
        );
    }
}

#[test]
fn replay_rejects_malformed_hetero_and_offline_flags() {
    for args in [
        vec!["replay", "--gen", "poisson", "--hetero", "x"],
        vec!["replay", "--gen", "poisson", "--offline", "sometimes"],
        vec!["replay", "--gen", "nosuchkind"],
    ] {
        let out = bin().args(&args).output().expect("spawn replay");
        assert_clean_failure(&out);
    }
}

#[test]
fn generate_hetero_without_profiles_out_writes_nothing() {
    // the flag pair is validated before any file I/O: a failed invocation
    // must not leave a stray instance file behind its nonzero exit
    let dir = temp_dir("hetero-noout");
    let inst = dir.join("inst.json");
    let out = bin()
        .args([
            "generate",
            "--seed",
            "5",
            "--processors",
            "3",
            "--hetero",
            "2",
            "--out",
            inst.to_str().unwrap(),
        ])
        .output()
        .expect("spawn generate");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profiles-out"));
    assert!(
        !inst.exists(),
        "failed generate must not leave a partial instance file"
    );
}

#[test]
fn solve_rejects_bad_profile_fleets_without_panicking() {
    let dir = temp_dir("profiles");
    let inst = dir.join("inst.json");
    std::fs::write(
        &inst,
        r#"{"num_processors":2,"horizon":4,"jobs":[{"value":1,"allowed":[{"proc":0,"time":1}]}]}"#,
    )
    .unwrap();

    // count mismatch: one profile for two processors
    let short = dir.join("short.json");
    std::fs::write(
        &short,
        r#"[{"wake_cost":3,"busy_rate":1,"sleep_states":[]}]"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "solve",
            inst.to_str().unwrap(),
            "--profiles",
            short.to_str().unwrap(),
        ])
        .output()
        .expect("spawn solve");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("mismatch"));

    // non-monotone sleep ladder
    let ladder = dir.join("ladder.json");
    std::fs::write(
        &ladder,
        r#"[{"wake_cost":3,"busy_rate":1,"sleep_states":[{"idle_rate":0.2,"wake_cost":1},{"idle_rate":0.5,"wake_cost":2}]},{"wake_cost":3,"busy_rate":1,"sleep_states":[]}]"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "solve",
            inst.to_str().unwrap(),
            "--profiles",
            ladder.to_str().unwrap(),
        ])
        .output()
        .expect("spawn solve");
    assert_clean_failure(&out);
    assert!(String::from_utf8_lossy(&out.stderr).contains("sleep state"));

    // a valid fleet must keep working through the same path
    let good = dir.join("good.json");
    std::fs::write(
        &good,
        r#"[{"wake_cost":3,"busy_rate":1,"sleep_states":[]},{"wake_cost":5,"busy_rate":2,"sleep_states":[]}]"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "solve",
            inst.to_str().unwrap(),
            "--profiles",
            good.to_str().unwrap(),
        ])
        .output()
        .expect("spawn solve");
    assert!(
        out.status.success(),
        "valid profiles must solve: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn batch_turns_bad_lines_into_structured_responses() {
    let dir = temp_dir("batch");
    let input = dir.join("reqs.jsonl");
    let good = r#"{"version":1,"id":5,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":4,"jobs":[{"value":1,"allowed":[{"proc":0,"time":1}]}]},"restart":3,"rate":1}"#;
    let truncated = r#"{"version":1,"id":6,"mode":"ScheduleAll","inst"#;
    let bad_instance = r#"{"version":1,"id":7,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":4,"time":0}]}]},"restart":3,"rate":1}"#;
    std::fs::write(&input, format!("{good}\n{truncated}\n{bad_instance}\n")).unwrap();

    let out = bin()
        .args(["batch", input.to_str().unwrap(), "--workers", "2"])
        .output()
        .expect("spawn batch");
    assert!(
        out.status.success(),
        "batch reports per-line errors in-band: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));

    let responses: Vec<SolveResponse> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("each line is a SolveResponse"))
        .collect();
    assert_eq!(responses.len(), 3);

    assert!(responses[0].ok);
    assert_eq!(responses[0].id, 5);

    let parse_err = responses[1].error.as_ref().expect("truncated line fails");
    assert_eq!(parse_err.kind, ErrorKind::Parse);
    assert!(parse_err.message.contains("line 2"));

    let inst_err = responses[2].error.as_ref().expect("bad instance fails");
    assert_eq!(inst_err.kind, ErrorKind::InvalidInstance);
    assert_eq!(
        responses[2].id, 7,
        "id is still echoed for invalid instances"
    );
}

#[test]
fn failed_replay_still_flushes_metrics_out() {
    // A command that dies mid-run must leave its partial metrics snapshot
    // behind: that is the run whose numbers are most wanted. The second
    // trace here is invalid JSON, so replay fails after the registry is
    // installed — the flush must happen anyway.
    let dir = temp_dir("metrics-on-failure");
    let bad = dir.join("bad-trace.json");
    std::fs::write(&bad, "{not json").unwrap();
    let metrics = dir.join("metrics.json");
    let out = bin()
        .args([
            "replay",
            bad.to_str().unwrap(),
            "--policy",
            "resolve:1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn replay");
    assert_clean_failure(&out);
    let text =
        std::fs::read_to_string(&metrics).expect("metrics snapshot written despite the failed run");
    let snapshot =
        power_scheduling::obs::Snapshot::from_json(&text).expect("flushed file is obs/v1");
    assert_eq!(snapshot.schema, power_scheduling::obs::SCHEMA);
}

#[test]
fn metrics_rejects_malformed_snapshot_files_with_nonzero_exit() {
    let dir = temp_dir("metrics-bad");
    let path = dir.join("snap.json");
    std::fs::write(&path, r#"{"schema":"obs/v1","counters":[{"name":"x""#).unwrap();
    let out = bin()
        .args(["metrics", path.to_str().unwrap()])
        .output()
        .expect("spawn metrics");
    assert_clean_failure(&out);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not an obs/v1 snapshot"),
        "parse failures must say what was wrong"
    );
}
