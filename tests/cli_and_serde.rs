//! Serde round-trips for the on-disk formats the CLI uses, plus simulation
//! cross-checks of schedule accounting.

use power_scheduling::prelude::*;
use power_scheduling::scheduling::simulate::{simulate, SlotState};
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{planted_instance, PlantedConfig};
use rand::SeedableRng;

fn solved_pair() -> (Instance, Schedule) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5150);
    let p = planted_instance(
        &PlantedConfig {
            num_processors: 2,
            horizon: 10,
            target_jobs: 6,
            decoy_prob: 0.2,
            max_value: 3,
            cost_model: PlantedCostModel::Affine { restart: 2.0 },
            policy: CandidatePolicy::All,
        },
        &mut rng,
    );
    let s = schedule_all(&p.instance, &p.candidates, &SolveOptions::default()).unwrap();
    (p.instance, s)
}

#[test]
fn instance_json_roundtrip() {
    let (inst, _) = solved_pair();
    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_processors, inst.num_processors);
    assert_eq!(back.horizon, inst.horizon);
    assert_eq!(back.num_jobs(), inst.num_jobs());
    for (a, b) in back.jobs.iter().zip(&inst.jobs) {
        assert_eq!(a.value, b.value);
        assert_eq!(a.allowed, b.allowed);
    }
}

#[test]
fn schedule_json_roundtrip_still_validates() {
    let (inst, sched) = solved_pair();
    let json = serde_json::to_string(&sched).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert!(power_scheduling::scheduling::model::validate_schedule(&inst, &back).is_empty());
    assert_eq!(back.total_cost, sched.total_cost);
    assert_eq!(back.assignments, sched.assignments);
}

#[test]
fn simulation_agrees_with_schedule_accounting() {
    let (inst, sched) = solved_pair();
    let trace = simulate(&inst, &sched);
    let busy: usize = trace.busy_slots.iter().sum();
    assert_eq!(busy, sched.scheduled_count);
    let restarts: usize = trace.restarts.iter().sum();
    assert_eq!(restarts, sched.awake.len());
    // every busy slot corresponds to exactly one assignment
    for asg in sched.assignments.iter().flatten() {
        assert_eq!(
            trace.states[asg.proc as usize][asg.time as usize],
            SlotState::Busy
        );
    }
    // render has one line per processor, horizon chars each
    let render = trace.render();
    let lines: Vec<&str> = render.trim_end().lines().collect();
    assert_eq!(lines.len(), inst.num_processors as usize);
    for line in lines {
        assert_eq!(line.len() - 4, inst.horizon as usize); // "pN: " prefix
    }
}

#[test]
fn solved_schedule_survives_disk_and_resolves_identically() {
    // write-read-solve determinism: same instance JSON solved twice gives the
    // same cost (full determinism of the greedy)
    let (inst, sched) = solved_pair();
    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    let cost = AffineCost::new(2.0, 1.0);
    let cands = enumerate_candidates(&back, &cost, CandidatePolicy::All);
    let s2 = schedule_all(&back, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s2.total_cost, sched.total_cost);
}
