//! Larger randomized stress tests for the incremental matching-rank oracle —
//! the load-bearing component of the whole reduction. Cross-checks hundreds
//! of random insertion schedules against Hopcroft–Karp and the weighted
//! reference at sizes well beyond the unit tests.

use power_scheduling::matching::oracle::weighted_rank_reference;
use power_scheduling::matching::{hopcroft_karp, BipartiteGraph, GainScratch, MatchingOracle};
use rand::{Rng, SeedableRng};

fn random_graph(rng: &mut impl Rng, nx: u32, ny: u32, deg: usize) -> BipartiteGraph {
    let mut edges = Vec::with_capacity(nx as usize * deg);
    for x in 0..nx {
        for _ in 0..rng.gen_range(0..=deg) {
            edges.push((x, rng.gen_range(0..ny)));
        }
    }
    BipartiteGraph::from_edges(nx, ny, &edges)
}

#[test]
fn cardinality_oracle_vs_hopcroft_karp_at_scale() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for trial in 0..10 {
        let nx = rng.gen_range(100..400u32);
        let ny = rng.gen_range(50..200u32);
        let g = random_graph(&mut rng, nx, ny, 5);
        let mut oracle = MatchingOracle::new_cardinality(&g);
        let mut inserted = vec![false; nx as usize];
        // random insertion order, checking every ~50 insertions
        let mut order: Vec<u32> = (0..nx).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for (step, &v) in order.iter().enumerate() {
            oracle.add_slot(v);
            inserted[v as usize] = true;
            if step % 50 == 49 || step + 1 == order.len() {
                let hk = hopcroft_karp(&g, |x| inserted[x as usize]);
                assert_eq!(
                    oracle.total(),
                    hk.size as f64,
                    "trial {trial} step {step}: oracle diverged from HK"
                );
            }
        }
    }
}

#[test]
fn weighted_oracle_vs_reference_at_scale() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAFE);
    for trial in 0..6 {
        let nx = rng.gen_range(60..150u32);
        let ny = rng.gen_range(30..80u32);
        let g = random_graph(&mut rng, nx, ny, 4);
        let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=50) as f64).collect();
        let mut oracle = MatchingOracle::new(&g, values.clone());
        let mut inserted = vec![false; nx as usize];
        for v in 0..nx {
            oracle.add_slot(v);
            inserted[v as usize] = true;
            if v % 37 == 36 || v + 1 == nx {
                let want = weighted_rank_reference(&g, &values, |x| inserted[x as usize]);
                assert_eq!(
                    oracle.total(),
                    want,
                    "trial {trial} slot {v}: weighted oracle diverged"
                );
            }
        }
    }
}

#[test]
fn interleaved_gains_and_commits_stay_consistent() {
    // Alternate gain probes and commits; every commit must realize the gain
    // its immediately preceding probe predicted, and probes must not corrupt
    // the committed state even under heavy scratch reuse.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD00D);
    let g = random_graph(&mut rng, 300, 150, 5);
    let values: Vec<f64> = (0..150).map(|_| rng.gen_range(1..=20) as f64).collect();
    let mut oracle = MatchingOracle::new(&g, values);
    let mut scratch = GainScratch::new();
    for _ in 0..200 {
        let probe: Vec<u32> = (0..rng.gen_range(1..8))
            .map(|_| rng.gen_range(0..300u32))
            .collect();
        let predicted = oracle.gain_of(&probe, &mut scratch);
        let again = oracle.gain_of(&probe, &mut scratch);
        assert_eq!(predicted, again, "probe not idempotent");
        if rng.gen_bool(0.5) {
            let before = oracle.total();
            let realized = oracle.commit(&probe);
            assert_eq!(predicted, realized, "commit diverged from probe");
            assert_eq!(oracle.total(), before + realized);
        }
    }
    // final cross-check against reference
    let committed: Vec<bool> = (0..300).map(|x| oracle.is_allowed(x)).collect();
    let want = weighted_rank_reference(oracle.graph(), oracle.values(), |x| committed[x as usize]);
    assert_eq!(oracle.total(), want);
}

#[test]
fn gain_scratch_shared_across_different_oracles() {
    // One scratch reused against two different oracles (the rayon pattern
    // after a work-steal) must stay correct thanks to epoch/versioning.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF00D);
    let g1 = random_graph(&mut rng, 80, 40, 4);
    let g2 = random_graph(&mut rng, 120, 60, 4);
    let mut o1 = MatchingOracle::new_cardinality(&g1);
    let mut o2 = MatchingOracle::new_cardinality(&g2);
    o1.commit(&(0..40u32).collect::<Vec<_>>());
    o2.commit(&(0..60u32).collect::<Vec<_>>());
    let mut scratch = GainScratch::new();
    for _ in 0..50 {
        let p1: Vec<u32> = (0..4).map(|_| rng.gen_range(0..80u32)).collect();
        let p2: Vec<u32> = (0..4).map(|_| rng.gen_range(0..120u32)).collect();
        let g1a = o1.gain_of(&p1, &mut scratch);
        let g2a = o2.gain_of(&p2, &mut scratch);
        let g1b = o1.gain_of(&p1, &mut scratch);
        let g2b = o2.gain_of(&p2, &mut scratch);
        assert_eq!(g1a, g1b, "scratch crosstalk on oracle 1");
        assert_eq!(g2a, g2b, "scratch crosstalk on oracle 2");
    }
}
