//! End-to-end speed-scaling tests that need the whole workspace: the
//! committed greedy-vs-exact regression instance, and the workload
//! generators' drop-free guarantee under online replay.

use power_scheduling::baselines::exact_schedule_all;
use power_scheduling::prelude::*;
use power_scheduling::workloads::{dvfs_trace, DvfsConfig};
use proptest::prelude::*;
use rand::SeedableRng;

/// The committed instance where greedy's guarantee bends under speed
/// scaling (documented in README "Speed scaling"): one processor, three
/// slots, wake cost 1, ladder `P(f) = f²` over rungs {1, 2}.
///
/// * `J1`: work 2, pinned to slot 0 — finishing it there needs frequency 2.
/// * `J2`, `J3`: unit work, pinned to slots 1 and 2.
///
/// The optimum pays **8**: a frequency-2 interval `[0, 1)` for the heavy
/// job (cost `1 + 4 = 5`) plus a frequency-1 interval `[1, 3)` for the two
/// light ones (cost `1 + 2·1 = 3`). Greedy's marginal-ratio ordering
/// instead locks in the cheap bottom-frequency coverage first and then
/// pays a level premium for the stranded heavy job, totalling **9**. Under
/// fixed shapes the greedy's candidate gains capture all interaction
/// between picks; with frequency levels, grabbing the bottom rung early
/// forecloses the cheaper cross-level split — the guarantee's
/// submodular-cover argument bounds the ratio, but exactness at small
/// sizes is gone (see README "Speed scaling").
fn regression_instance() -> DvfsInstance {
    DvfsInstance {
        num_processors: 1,
        horizon: 3,
        wake_cost: 1.0,
        ladder: FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]),
        jobs: vec![
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 0)],
                work: Some(2),
            },
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 1)],
                work: None,
            },
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 2)],
                work: None,
            },
        ],
    }
}

#[test]
fn greedy_diverges_from_exact_under_speed_scaling() {
    let dvfs = regression_instance();

    let greedy = solve_dvfs(&dvfs).expect("greedy solves");
    assert_eq!(greedy.total_cost, 9.0, "greedy's eager bottom-rung grab");
    assert_eq!(validate_dvfs_schedule(&dvfs, &greedy), vec![]);

    // Exact branch-and-bound over the same compiled (start, freq) family.
    let compiled = dvfs.compile().expect("compiles");
    let exact = exact_schedule_all(&compiled.instance, &compiled.candidates, 1_000_000)
        .expect("exact within budget");
    assert_eq!(exact.cost, 8.0, "optimum splits the wake across levels");
    assert!(
        greedy.total_cost > exact.cost,
        "the documented gap: greedy 9 vs exact 8"
    );

    // The classical world has no such gap on this shape: with the ladder
    // collapsed to one frequency (and the heavy job made unit-work), greedy
    // is exact here.
    let mut flat = regression_instance();
    flat.ladder = FreqLadder::degenerate(1.0);
    flat.jobs[0].work = None;
    let flat_greedy = solve_dvfs(&flat).expect("degenerate solves");
    let flat_compiled = flat.compile().expect("compiles");
    let flat_exact = exact_schedule_all(
        &flat_compiled.instance,
        &flat_compiled.candidates,
        1_000_000,
    )
    .expect("exact within budget");
    assert_eq!(flat_greedy.total_cost, flat_exact.cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Satellite guarantee: generated DVFS traces never force drops — the
    // generators' lowest-frequency exclusive-slot claim leaves the eager
    // greedy policy a free slot for every arrival, and the replayed runs
    // stay within ratio ≥ 1 of the compiled offline reference.
    #[test]
    fn generated_dvfs_traces_replay_drop_free(
        seed in 0u64..256,
        procs in 1u32..4,
        horizon in 6u32..20,
        target in 1usize..9,
        max_work in 1u32..6,
        slack in 0u32..4,
    ) {
        let cfg = DvfsConfig {
            num_processors: procs,
            horizon,
            target_jobs: target,
            max_work,
            slack,
            ..DvfsConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = dvfs_trace(&cfg, &mut rng);
        prop_assert_eq!(trace.validate(), Ok(()));

        let mut policy = PolicyKind::Greedy.build(None);
        let (report, _) = replay_with_report(&trace, policy.as_mut(), OfflineRef::Auto)
            .expect("replay succeeds");
        prop_assert!(
            report.drop_free,
            "dropped {} of {} jobs on seed {}",
            report.dropped, report.jobs, seed
        );
        prop_assert_eq!(report.scheduled, trace.jobs.len());
        prop_assert!(
            report.ratio >= 1.0 - 1e-9,
            "online beat the offline reference: ratio {}", report.ratio
        );
    }
}
