//! End-to-end admission-control test: a `power-sched serve` process with a
//! tiny bounded queue and `--shed-policy reject` must answer excess load
//! with structured `Overloaded` responses carrying a `retry_after_ms` hint
//! — never unbounded queueing, never silent drops — and still shut down
//! cleanly afterwards.

use power_scheduling::engine::{EngineClient, ErrorKind, SolveRequest, Transport};
use power_scheduling::prelude::*;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct ServerGuard {
    child: Child,
    addr: String,
}

impl ServerGuard {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_power-sched"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn power-sched serve");
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("read listen banner");
        assert!(first_line.contains("listening on"));
        let addr = first_line.trim().rsplit(' ').next().unwrap().to_string();
        Self { child, addr }
    }

    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "server did not exit within 30s");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A request that pins the single worker for long enough that a burst sent
/// behind it must overflow a depth-1 admission queue.
fn stall_request(id: u64) -> SolveRequest {
    let horizon = 400u32;
    let jobs: Vec<Job> = (0..800)
        .map(|i| Job::unit(vec![SlotRef::new(i % 2, i / 2 % horizon)]))
        .collect();
    SolveRequest::builder(id, Instance::new(2, horizon, jobs))
        .affine(5.0, 1.0)
        .build()
}

fn tiny_request(id: u64) -> SolveRequest {
    let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])]);
    SolveRequest::builder(id, inst).affine(3.0, 1.0).build()
}

#[test]
fn overload_returns_structured_overloaded_not_unbounded_queueing() {
    let mut server = ServerGuard::spawn(&[
        "--workers",
        "1",
        "--queue-depth",
        "1",
        "--shed-policy",
        "reject",
    ]);

    // Each round occupies the only worker with a slow solve, then bursts
    // far more work than a depth-1 queue can hold. The burst usually sheds
    // on the first round; re-arming bounds the (tiny) chance that the stall
    // finishes before the burst lands, without ever weakening the
    // per-response assertions.
    const BURST: u64 = 30;
    let mut staller =
        EngineClient::connect(&*server.addr, Transport::default()).expect("staller connects");
    let mut total_shed = 0u64;
    for round in 0..10 {
        if total_shed > 0 {
            break;
        }
        let stall_id = 1_000 + round;
        staller.send(&stall_request(stall_id)).unwrap();
        staller.flush().unwrap();
        // Give the worker time to dequeue the stall so the queue slot is free.
        std::thread::sleep(Duration::from_millis(100));

        let mut burster =
            EngineClient::connect(&*server.addr, Transport::default()).expect("burster connects");
        for id in 0..BURST {
            burster.send(&tiny_request(id)).unwrap();
        }
        burster.flush().unwrap();

        let mut shed = 0u64;
        let mut solved = 0u64;
        for want in 0..BURST {
            let resp = burster.recv().expect("read burst response").unwrap();
            assert_eq!(resp.id, want, "responses stay in request order");
            if resp.ok {
                solved += 1;
                assert!(resp.schedule.is_some(), "admitted requests get solved");
            } else {
                let err = resp.error.as_ref().expect("failure carries an error");
                assert_eq!(
                    err.kind,
                    ErrorKind::Overloaded,
                    "only shed failures: {err:?}"
                );
                let hint = resp
                    .retry_after_ms
                    .expect("overloaded responses carry a retry hint");
                assert!(hint >= 1, "hint has a 1ms floor");
                shed += 1;
            }
        }
        assert_eq!(
            shed + solved,
            BURST,
            "every request gets exactly one answer"
        );
        total_shed += shed;

        // The stalled solve itself was never shed and completes fine.
        let stall_resp = staller.recv().expect("staller response").unwrap();
        assert!(stall_resp.ok, "{:?}", stall_resp.error);
        assert_eq!(stall_resp.id, stall_id);
        drop(burster);
    }
    assert!(
        total_shed > 0,
        "a depth-1 queue behind a stalled worker must shed some of {BURST} in 10 rounds"
    );

    // Clean shutdown after shedding: exit code 0.
    let mut shutter =
        EngineClient::connect(&*server.addr, Transport::default()).expect("shutter connects");
    shutter.send_control("shutdown").unwrap();
    shutter.flush().unwrap();
    assert!(shutter.recv().unwrap().expect("shutdown ack").ok);
    let status = server.wait_for_exit();
    assert!(
        status.success(),
        "clean exit after load shedding: {status:?}"
    );
}
