//! Property-based tests (proptest) for the core invariants the paper's
//! correctness rests on: submodularity/monotonicity of the matching-rank
//! oracles, bicriteria guarantees of the budgeted greedy, bitset algebra,
//! matroid axioms, and schedule validity.

use power_scheduling::matching::{hopcroft_karp, BipartiteGraph, GainScratch, MatchingOracle};
use power_scheduling::matroids::{Matroid, PartitionMatroid};
use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use power_scheduling::submodular::functions::CoverageFn;
use power_scheduling::submodular::SetSystemObjective;
use proptest::prelude::*;

/// Strategy: a small random bipartite graph as (nx, ny, edge list).
fn graph_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>)> {
    (1u32..10, 1u32..8).prop_flat_map(|(nx, ny)| {
        let edges = proptest::collection::vec((0..nx, 0..ny), 0..40);
        (Just(nx), Just(ny), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oracle_total_matches_hopcroft_karp((nx, ny, edges) in graph_strategy(),
                                          subset_bits in proptest::collection::vec(any::<bool>(), 10)) {
        let g = BipartiteGraph::from_edges(nx, ny, &edges);
        let mut oracle = MatchingOracle::new_cardinality(&g);
        let allowed: Vec<bool> = (0..nx as usize)
            .map(|i| *subset_bits.get(i).unwrap_or(&false))
            .collect();
        for (x, &a) in allowed.iter().enumerate() {
            if a {
                oracle.add_slot(x as u32);
            }
        }
        let hk = hopcroft_karp(&g, |x| allowed[x as usize]);
        prop_assert_eq!(oracle.total(), hk.size as f64);
    }

    #[test]
    fn oracle_gain_is_pure_and_matches_commit((nx, ny, edges) in graph_strategy(),
                                              pre in proptest::collection::vec(0u32..10, 0..6),
                                              probe in proptest::collection::vec(0u32..10, 0..6)) {
        let g = BipartiteGraph::from_edges(nx, ny, &edges);
        let mut oracle = MatchingOracle::new_cardinality(&g);
        for &x in pre.iter().filter(|&&x| x < nx) {
            oracle.add_slot(x);
        }
        let probe: Vec<u32> = probe.into_iter().filter(|&x| x < nx).collect();
        let before = oracle.total();
        let mut scratch = GainScratch::new();
        let gain = oracle.gain_of(&probe, &mut scratch);
        prop_assert_eq!(oracle.total(), before, "gain_of mutated the oracle");
        let realized = oracle.commit(&probe);
        prop_assert_eq!(gain, realized, "gain_of disagreed with commit");
    }

    #[test]
    fn matching_rank_diminishing_returns((nx, ny, edges) in graph_strategy(),
                                         a_bits in proptest::collection::vec(any::<bool>(), 10),
                                         extra_bits in proptest::collection::vec(any::<bool>(), 10),
                                         v in 0u32..10) {
        prop_assume!(v < nx);
        let g = BipartiteGraph::from_edges(nx, ny, &edges);
        let eval = |slots: &[u32]| {
            let mut o = MatchingOracle::new_cardinality(&g);
            o.commit(slots);
            o.total()
        };
        let a: Vec<u32> = (0..nx).filter(|&x| *a_bits.get(x as usize).unwrap_or(&false)).collect();
        let mut b = a.clone();
        for x in 0..nx {
            if !b.contains(&x) && *extra_bits.get(x as usize).unwrap_or(&false) {
                b.push(x);
            }
        }
        let (fa, fb) = (eval(&a), eval(&b));
        prop_assert!(fb >= fa, "monotonicity violated");
        let mut av = a.clone(); av.push(v);
        let mut bv = b.clone(); bv.push(v);
        let ga = eval(&av) - fa;
        let gb = eval(&bv) - fb;
        prop_assert!(ga >= gb - 1e-9, "submodularity violated: {} < {}", ga, gb);
    }

    #[test]
    fn budgeted_greedy_bicriteria_guarantee(seed in 0u64..5000, eps_exp in 1i32..8) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(8..30usize);
        // planted unit-cost cover of size k
        let k = rng.gen_range(2..5usize);
        let mut subsets: Vec<Vec<u32>> = vec![Vec::new(); k];
        for item in 0..n as u32 {
            subsets[rng.gen_range(0..k)].push(item);
        }
        subsets.retain(|s| !s.is_empty());
        let b = subsets.len() as f64;
        for _ in 0..10 {
            let s: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.3)).collect();
            if !s.is_empty() { subsets.push(s); }
        }
        let costs: Vec<f64> = (0..subsets.len())
            .map(|i| if (i as f64) < b { 1.0 } else { rng.gen_range(0.5..3.0) })
            .collect();
        let f = CoverageFn::unweighted(n, (0..n).map(|i| vec![i as u32]).collect());
        let eps = 2f64.powi(-eps_exp);
        let mut obj = SetSystemObjective::new(&f, subsets, costs);
        let out = power_scheduling::submodular::budgeted_greedy(
            &mut obj, GreedyConfig::lazy(n as f64, eps));
        prop_assert!(out.reached_target);
        prop_assert!(out.utility >= (1.0 - eps) * n as f64 - 1e-9);
        let bound = 2.0 * (1.0 / eps).log2().ceil() * b;
        prop_assert!(out.total_cost <= bound + 1e-9,
            "cost {} above bound {}", out.total_cost, bound);
    }

    #[test]
    fn bitset_union_intersection_laws(xs in proptest::collection::vec(0u32..64, 0..30),
                                      ys in proptest::collection::vec(0u32..64, 0..30)) {
        let a = BitSet::from_iter(64, xs.iter().copied());
        let b = BitSet::from_iter(64, ys.iter().copied());
        let mut u = a.clone(); u.union_with(&b);
        let mut i = a.clone(); i.intersect_with(&b);
        // |A| + |B| = |A∪B| + |A∩B|
        prop_assert_eq!(a.count() + b.count(), u.count() + i.count());
        // A∩B ⊆ A ⊆ A∪B
        prop_assert!(i.is_subset(&a));
        prop_assert!(a.is_subset(&u));
        // intersection_count agrees with materialized intersection
        prop_assert_eq!(a.intersection_count(&b), i.count());
    }

    #[test]
    fn partition_matroid_axioms_random(groups in proptest::collection::vec(0u32..3, 1..9),
                                       caps in proptest::collection::vec(0usize..3, 3)) {
        let m = PartitionMatroid::new(groups, caps);
        if m.ground_size() <= 9 {
            prop_assert!(power_scheduling::matroids::check_matroid_axioms(&m).is_ok());
        }
    }

    #[test]
    fn schedules_always_validate(seed in 0u64..3000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = rng.gen_range(3..10u32);
        let p = rng.gen_range(1..3u32);
        let n = rng.gen_range(1..6usize);
        let jobs: Vec<Job> = (0..n).map(|_| {
            let proc = rng.gen_range(0..p);
            let s = rng.gen_range(0..t);
            let e = rng.gen_range(s + 1..=t);
            Job::window(rng.gen_range(1..5) as f64, proc, s, e)
        }).collect();
        let inst = Instance::new(p, t, jobs);
        let cost = AffineCost::new(rng.gen_range(1..5) as f64, 1.0);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        if let Ok(s) = schedule_all(&inst, &cands, &SolveOptions::default()) {
            prop_assert!(validate_schedule(&inst, &s).is_empty());
            prop_assert_eq!(s.scheduled_count, inst.num_jobs());
        }
        // prize-collecting at half the total value must also validate
        let z = inst.total_value() / 2.0;
        if let Ok(s) = prize_collecting_exact(&inst, &cands, z, &SolveOptions::default()) {
            prop_assert!(validate_schedule(&inst, &s).is_empty());
            prop_assert!(s.scheduled_value >= z - 1e-9);
        }
    }
}
