//! Integration and property tests for the `sched-sim` online replay
//! harness: competitive ratios against the offline reference, and
//! bit-determinism of fleet replay at any worker count.

use power_scheduling::prelude::*;
use power_scheduling::sim::OfflineRef;
use power_scheduling::workloads::{generate_trace, ArrivalConfig, TraceKind};
use proptest::prelude::*;
use rand::SeedableRng;

const KINDS: [TraceKind; 3] = [
    TraceKind::PoissonBursts,
    TraceKind::Diurnal,
    TraceKind::DeadlineCliffs,
];

const POLICIES: [&str; 3] = ["greedy", "hiring", "resolve:3"];

/// Small enough that the auto offline reference is the *exact* optimum
/// (2 · 6·7/2 = 42 candidate intervals), making `ratio >= 1` a theorem
/// whenever the policy schedules every job.
fn small_cfg() -> ArrivalConfig {
    ArrivalConfig {
        num_processors: 2,
        horizon: 6,
        target_jobs: 5,
        restart: 3.0,
        rate: 1.0,
        max_value: 2,
        slack: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every generated trace and every policy: whenever the policy
    /// completes the trace, its online cost is bounded below by the offline
    /// optimum — empirical competitive ratio >= 1. The eager policies
    /// (greedy, hiring) must *always* complete planted traces; the
    /// plan-following resolve policy may rarely lose a job to deferral
    /// (see `PeriodicResolve` docs), which must then be reported.
    #[test]
    fn online_cost_dominates_offline_opt(seed in 0u64..10_000, kind_ix in 0usize..3, policy_ix in 0usize..3) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = generate_trace(KINDS[kind_ix], &small_cfg(), &mut rng);
        let kind: PolicyKind = POLICIES[policy_ix].parse().unwrap();
        let (report, _) =
            replay_with_report(&trace, kind.build(None).as_mut(), OfflineRef::Auto).unwrap();
        prop_assert_eq!(report.offline_ref.as_str(), "exact", "reference must be exact OPT");
        prop_assert_eq!(report.scheduled + report.dropped, report.jobs, "accounting");
        prop_assert_eq!(report.drop_free, report.dropped == 0, "drop_free mirrors the count");
        if !matches!(kind, PolicyKind::Resolve { .. }) {
            prop_assert!(report.drop_free, "eager policy dropped on a planted trace");
        }
        // The ratio theorem holds only for drop-free completed replays: a
        // lossy plan-follower compares an incomplete schedule against the
        // full offline optimum, so its ratio is meaningless (and may dip
        // below 1 — see `deferral_loss_serializes_drop_free_false...` in
        // the sim crate). Gate on the serialized verdict, exactly as
        // scripts must.
        if report.drop_free {
            // The completed online schedule is itself a feasible offline
            // schedule, so with an exact reference this is a theorem.
            prop_assert!(
                report.ratio >= 1.0 - 1e-9,
                "policy {} beat OPT on {}: online {} < offline {}",
                report.policy, report.trace, report.online_cost, report.offline_cost
            );
        }
    }

    /// Replay is bit-deterministic: the same seed produces byte-identical
    /// report JSON no matter how many fleet workers replay it.
    #[test]
    fn fleet_replay_bit_deterministic_at_any_worker_count(seed in 0u64..10_000, policy_ix in 0usize..3) {
        let traces: Vec<_> = KINDS
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                generate_trace(k, &small_cfg(), &mut rng)
            })
            .collect();
        let kind: PolicyKind = POLICIES[policy_ix].parse().unwrap();
        let render = |workers: usize| -> Vec<String> {
            replay_fleet(&traces, &kind, &FleetOptions { workers, offline: OfflineRef::Auto })
                .into_iter()
                .map(|r| {
                    // Re-solve wall times are legitimately run-dependent;
                    // everything else must be bit-identical.
                    let mut r = r.unwrap();
                    if let Some(rs) = &mut r.resolve_stats {
                        rs.total_ns = 0;
                        rs.p50_ns = 0;
                        rs.p99_ns = 0;
                    }
                    serde_json::to_string(&r).unwrap()
                })
                .collect()
        };
        let one = render(1);
        prop_assert_eq!(&one, &render(2), "2 workers diverged from 1");
        prop_assert_eq!(&one, &render(5), "5 workers diverged from 1");
    }
}

/// The generated-trace smoke matrix the CI step mirrors: 3 policies × the
/// 3 generators at CLI-default sizes (offline reference may be greedy
/// there) — ratios stay >= 1 and nothing drops.
#[test]
fn cli_default_sizes_ratio_at_least_one() {
    for kind in KINDS {
        for policy in POLICIES {
            for seed in [0u64, 7, 42] {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let trace = generate_trace(kind, &ArrivalConfig::default(), &mut rng);
                let kind_p: PolicyKind = policy.parse().unwrap();
                let (report, _) =
                    replay_with_report(&trace, kind_p.build(None).as_mut(), OfflineRef::Auto)
                        .unwrap();
                assert_eq!(report.dropped, 0, "{kind} {policy} seed {seed}");
                assert!(
                    report.ratio >= 1.0 - 1e-9,
                    "{kind} {policy} seed {seed}: ratio {} (online {}, offline {} via {})",
                    report.ratio,
                    report.online_cost,
                    report.offline_cost,
                    report.offline_ref
                );
            }
        }
    }
}

/// Heterogeneous fleets end-to-end: profiled traces (distinct per-processor
/// wake/busy plus a sleep ladder) replay under every policy, the exact
/// offline reference prices with the same profiles, and the ratio theorem
/// still holds for drop-free completions. The ladder-aware deployed energy
/// never exceeds the interval-sum online cost.
#[test]
fn heterogeneous_replays_keep_ratio_theorem() {
    use power_scheduling::workloads::hetero_trace;
    for kind in KINDS {
        for policy in POLICIES {
            for seed in [1u64, 8, 21] {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let trace = hetero_trace(kind, &small_cfg(), 2, &mut rng);
                assert_eq!(trace.validate(), Ok(()));
                let kind_p: PolicyKind = policy.parse().unwrap();
                let (report, _) =
                    replay_with_report(&trace, kind_p.build(None).as_mut(), OfflineRef::Auto)
                        .unwrap();
                assert_eq!(
                    report.offline_ref, "exact",
                    "{kind} {policy} seed {seed}: reference must be exact OPT"
                );
                assert!(
                    report.deployed_cost <= report.online_cost + 1e-9,
                    "{kind} {policy} seed {seed}: deployed {} above online {}",
                    report.deployed_cost,
                    report.online_cost
                );
                if report.drop_free {
                    assert!(
                        report.ratio >= 1.0 - 1e-9,
                        "{kind} {policy} seed {seed}: hetero ratio {} (online {}, offline {})",
                        report.ratio,
                        report.online_cost,
                        report.offline_cost
                    );
                }
            }
        }
    }
}

/// Adversarial deadline cliff against the plan-follower: the t=0 re-solve
/// defers job A into the merged interval, then the adversary releases B at
/// its very last opportunity. With a second processor free, the forced-job
/// rescue pass must place B *without* an extra suffix re-solve; with one
/// processor, the loss is intrinsic to deferral and must surface as
/// `drop_free: false` (covered in the sim crate's report tests).
#[test]
fn deadline_cliff_forced_rescue_saves_last_slot_arrival() {
    use power_scheduling::scheduling::trace::{ArrivalTrace, TimedJob};
    use power_scheduling::sim::PeriodicResolve;
    let trace = ArrivalTrace {
        name: "rescue-cliff".into(),
        num_processors: 2,
        horizon: 6,
        restart: 10.0,
        rate: 1.0,
        jobs: vec![
            TimedJob::window(1.0, 0, 0, 0, 4),
            TimedJob::window(1.0, 0, 0, 3, 6),
            TimedJob {
                release: 3,
                value: 1.0,
                allowed: vec![SlotRef::new(0, 3), SlotRef::new(1, 3)],
                work: None,
            },
        ],
        profiles: None,
        freq_ladder: None,
    };
    let mut policy = PeriodicResolve::new(6);
    let out = power_scheduling::sim::replay(&trace, &mut policy).unwrap();
    assert!(
        out.dropped.is_empty(),
        "rescue failed: dropped {:?}",
        out.dropped
    );
    assert_eq!(out.schedule.scheduled_count, 3);
    // B ran on the free processor 1 at its only slot
    assert_eq!(out.schedule.assignments[2], Some(SlotRef::new(1, 3)));
    // exactly the t=0 plan solve — the last-slot arrival must NOT have
    // triggered a futile suffix re-solve (a plan cannot use a slot that is
    // already the present)
    assert_eq!(policy.resolves(), 1, "rescue must not re-solve");
    assert_eq!(policy.fallbacks(), 0);
}

/// The facade prelude exposes the whole replay surface.
#[test]
fn prelude_replay_surface() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let trace = generate_trace(TraceKind::PoissonBursts, &small_cfg(), &mut rng);
    let reports = replay_fleet(
        &[trace],
        &PolicyKind::Resolve {
            period: 2,
            warm: false,
        },
        &FleetOptions::default(),
    );
    let report: &ReplayReport = reports[0].as_ref().unwrap();
    assert!(report.events >= 1, "periodic resolve never re-solved");
    assert!(report.ratio >= 1.0 - 1e-9);
}

/// Warm-start re-solving is a pure performance optimization: for any trace
/// and any re-solve period, `resolve:K:warm` must make bit-identical
/// decisions (awake runs, assignments, drops, energy) to `resolve:K`.
#[test]
fn warm_resolve_bit_identical_to_cold_deterministic() {
    let cfg = ArrivalConfig {
        num_processors: 2,
        horizon: 24,
        target_jobs: 14,
        restart: 3.0,
        rate: 1.0,
        max_value: 1,
        slack: 3,
    };
    for kind in KINDS {
        for seed in [0u64, 11, 99] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let trace = generate_trace(kind, &cfg, &mut rng);
            for period in [1u32, 3] {
                let cold = power_scheduling::sim::replay(
                    &trace,
                    PolicyKind::Resolve {
                        period,
                        warm: false,
                    }
                    .build(None)
                    .as_mut(),
                )
                .unwrap();
                let warm = power_scheduling::sim::replay(
                    &trace,
                    PolicyKind::Resolve { period, warm: true }
                        .build(None)
                        .as_mut(),
                )
                .unwrap();
                let ctx = format!("{kind} seed {seed} period {period}");
                assert_eq!(warm.schedule.awake, cold.schedule.awake, "{ctx}");
                assert_eq!(
                    warm.schedule.assignments, cold.schedule.assignments,
                    "{ctx}"
                );
                assert_eq!(
                    warm.schedule.total_cost.to_bits(),
                    cold.schedule.total_cost.to_bits(),
                    "{ctx}: energy must be bit-identical"
                );
                assert_eq!(warm.dropped, cold.dropped, "{ctx}");
                assert_eq!(warm.events, cold.events, "{ctx}: re-solve cadence");
                let stats = warm.resolve_stats.expect("resolve policy reports stats");
                assert_eq!(
                    stats.warm + stats.cold,
                    stats.count,
                    "{ctx}: counters partition the re-solves"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form of the warm/cold equivalence over random Poisson /
    /// diurnal / deadline-cliff traces and random re-solve periods.
    #[test]
    fn warm_resolve_bit_identical_to_cold(seed in 0u64..10_000, kind_ix in 0usize..3, period in 1u32..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = generate_trace(KINDS[kind_ix], &small_cfg(), &mut rng);
        let cold = power_scheduling::sim::replay(
            &trace,
            PolicyKind::Resolve { period, warm: false }.build(None).as_mut(),
        ).unwrap();
        let warm = power_scheduling::sim::replay(
            &trace,
            PolicyKind::Resolve { period, warm: true }.build(None).as_mut(),
        ).unwrap();
        prop_assert_eq!(&warm.schedule.awake, &cold.schedule.awake);
        prop_assert_eq!(&warm.schedule.assignments, &cold.schedule.assignments);
        prop_assert_eq!(warm.schedule.total_cost.to_bits(), cold.schedule.total_cost.to_bits());
        prop_assert_eq!(&warm.dropped, &cold.dropped);
        prop_assert_eq!(warm.events, cold.events);
    }
}

/// A cost-model change between re-solves must trip the structural checksum:
/// the handle falls back to a full cold rebuild (counted in `cold`) and the
/// post-divergence results still match a from-scratch solve exactly.
#[test]
fn warm_handle_checksum_divergence_recovers_cold() {
    let mut handle = WarmHandle::new(CandidatePolicy::All);
    let steps: Vec<(Vec<u64>, Instance)> = (0..6)
        .map(|i| {
            let jobs = vec![
                Job::window(1.0, 0, i, i + 4),
                Job::window(1.0, 1, i + 2, i + 7),
            ];
            (vec![1, 2], Instance::new(2, 16, jobs))
        })
        .collect();
    let cheap = AffineCost::new(3.0, 1.0);
    let pricey = AffineCost::new(7.0, 2.0);
    for (i, (keys, inst)) in steps.iter().enumerate() {
        // Swap the cost model mid-stream: the checksum must catch it.
        let cost: &dyn EnergyCost = if i < 3 { &cheap } else { &pricey };
        let before = handle.stats();
        let got = handle.solve(inst, keys, cost).unwrap();
        let after = handle.stats();
        if i == 0 || i == 3 {
            assert_eq!(
                after.cold,
                before.cold + 1,
                "step {i}: rebuild must be counted cold"
            );
        } else {
            assert_eq!(after.warm, before.warm + 1, "step {i}: delta path");
        }
        let want = Solver::new(inst, cost).schedule_all().unwrap();
        assert_eq!(got.awake, want.awake, "step {i}");
        assert_eq!(got.assignments, want.assignments, "step {i}");
        assert_eq!(
            got.total_cost.to_bits(),
            want.total_cost.to_bits(),
            "step {i}"
        );
    }
    assert_eq!(handle.stats(), WarmStats { warm: 4, cold: 2 });
}
