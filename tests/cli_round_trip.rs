//! End-to-end test of the `power-sched` binary: `generate → solve →
//! validate`, exercising the real argv parsing and the serde JSON files the
//! CLI reads and writes — the same path a shell user takes.

use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_power-sched"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn power-sched");
    assert!(
        out.status.success(),
        "power-sched {:?} failed\nstdout: {}\nstderr: {}",
        cmd.get_args().collect::<Vec<_>>(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("power-sched-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn generate(dir: &Path, seed: u64, jobs: usize) -> PathBuf {
    let inst_path = dir.join("inst.json");
    run_ok(bin().args([
        "generate",
        "--seed",
        &seed.to_string(),
        "--processors",
        "2",
        "--horizon",
        "14",
        "--jobs",
        &jobs.to_string(),
        "--values",
        "4",
        "--out",
        inst_path.to_str().unwrap(),
    ]));
    inst_path
}

#[test]
fn generate_solve_validate_round_trip() {
    let dir = temp_dir("all");
    let inst_path = generate(&dir, 99, 10);
    let sched_path = dir.join("sched.json");

    let out = run_ok(bin().args([
        "solve",
        inst_path.to_str().unwrap(),
        "--restart",
        "3",
        "--rate",
        "1",
        "--out",
        sched_path.to_str().unwrap(),
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("scheduled"),
        "solve output missing summary: {stdout}"
    );

    // The validate subcommand must accept the files the CLI itself wrote.
    let out = run_ok(bin().args([
        "validate",
        inst_path.to_str().unwrap(),
        sched_path.to_str().unwrap(),
    ]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("schedule is valid"));

    // Independent library-level check of the on-disk artifacts: parse both
    // files ourselves and re-validate — the CLI's word is not enough.
    let inst: Instance =
        serde_json::from_str(&std::fs::read_to_string(&inst_path).unwrap()).unwrap();
    let sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(&sched_path).unwrap()).unwrap();
    assert!(validate_schedule(&inst, &sched).is_empty());
    assert_eq!(sched.scheduled_count, inst.num_jobs(), "schedule-all mode");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_with_target_reaches_prize_collecting_value() {
    let dir = temp_dir("target");
    let inst_path = generate(&dir, 7, 8);
    let sched_path = dir.join("sched.json");

    let inst: Instance =
        serde_json::from_str(&std::fs::read_to_string(&inst_path).unwrap()).unwrap();
    let target = 0.5 * inst.total_value();

    run_ok(bin().args([
        "solve",
        inst_path.to_str().unwrap(),
        "--target",
        &target.to_string(),
        "--out",
        sched_path.to_str().unwrap(),
    ]));
    run_ok(bin().args([
        "validate",
        inst_path.to_str().unwrap(),
        sched_path.to_str().unwrap(),
    ]));

    let sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(&sched_path).unwrap()).unwrap();
    assert!(
        sched.scheduled_value >= target - 1e-9,
        "value {} below requested target {target}",
        sched.scheduled_value
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_rejects_corrupted_schedule() {
    let dir = temp_dir("corrupt");
    let inst_path = generate(&dir, 3, 6);
    let sched_path = dir.join("sched.json");
    run_ok(bin().args([
        "solve",
        inst_path.to_str().unwrap(),
        "--out",
        sched_path.to_str().unwrap(),
    ]));

    // Corrupt the recorded cost: validation must fail loudly.
    let mut sched: Schedule =
        serde_json::from_str(&std::fs::read_to_string(&sched_path).unwrap()).unwrap();
    sched.total_cost += 5.0;
    std::fs::write(&sched_path, serde_json::to_string(&sched).unwrap()).unwrap();

    let out = bin()
        .args([
            "validate",
            inst_path.to_str().unwrap(),
            sched_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn power-sched");
    assert!(
        !out.status.success(),
        "validate accepted a corrupted schedule"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("CostMismatch"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_exits_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn power-sched");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
