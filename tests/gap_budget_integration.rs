//! Integration: the Appendix .2 gap-budget solver against the Chapter 2
//! machinery — the two formulations must agree where their semantics
//! overlap, and the classical minimum-gap objective must be consistent with
//! the affine-cost optimum.

use power_scheduling::baselines::{
    exact_schedule_all, max_value_with_budget, min_runs_schedule_all,
};
use power_scheduling::prelude::*;
use rand::{Rng, SeedableRng};

#[test]
fn min_runs_dominates_relaxed_interval_count() {
    // The paper's key modeling point: Chapter 2 lets a processor stay awake
    // *idle* through short gaps, so with α ≫ length the exact affine optimum
    // may bridge separated jobs with ONE interval, while the classical
    // busy-when-awake gap model must pay one run per job cluster. Hence
    // exact_runs ≤ min_runs always — and strictly fewer exactly when
    // bridging pays off.
    let mut rng = rand::rngs::StdRng::seed_from_u64(606);
    let mut saw_bridging = false;
    for _ in 0..12 {
        let t = rng.gen_range(4..8u32);
        let n = rng.gen_range(1..4usize);
        // pinned jobs at distinct slots
        let mut times: Vec<u32> = (0..t).collect();
        for i in (1..times.len()).rev() {
            let j = rng.gen_range(0..=i);
            times.swap(i, j);
        }
        let jobs: Vec<Job> = times
            .iter()
            .take(n)
            .map(|&time| Job::unit(vec![SlotRef::new(0, time)]))
            .collect();
        let inst = Instance::new(1, t, jobs);

        let runs = min_runs_schedule_all(&inst).expect("pinned distinct slots are feasible");
        assert!(runs as usize <= inst.num_jobs());

        let alpha = 1000.0;
        let cost = AffineCost::new(alpha, 1.0);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let exact = exact_schedule_all(&inst, &cands, 8_000_000).expect("feasible");
        let exact_runs = exact.chosen.len() as u32;
        assert!(
            exact_runs <= runs,
            "awake-may-idle optimum used {exact_runs} intervals > busy-only {runs} runs"
        );
        if exact_runs < runs {
            saw_bridging = true;
        }
    }
    assert!(
        saw_bridging,
        "expected at least one instance where idle-bridging beats sleeping"
    );
}

#[test]
fn budget_value_never_exceeds_relaxed_chapter2_value() {
    // busy-when-awake is a restriction of the paper's awake-may-idle
    // semantics, so for the same awake budget the prize-collecting value
    // under Chapter 2 candidates can only be larger.
    let mut rng = rand::rngs::StdRng::seed_from_u64(707);
    for _ in 0..6 {
        let t = rng.gen_range(4..7u32);
        let n = rng.gen_range(2..5usize);
        let jobs: Vec<Job> = (0..n)
            .map(|_| {
                let s = rng.gen_range(0..t);
                let e = rng.gen_range(s + 1..=t);
                Job::window(rng.gen_range(1..5) as f64, 0, s, e)
            })
            .collect();
        let inst = Instance::new(1, t, jobs);
        let g = rng.gen_range(1..3u32);
        let constrained = max_value_with_budget(&inst, g);
        // the relaxed counterpart: best value over any ≤g intervals, idling
        // allowed — computed by brute force over interval structures
        let relaxed = brute_force_relaxed(&inst, g);
        assert!(
            constrained.value <= relaxed + 1e-9,
            "busy-when-awake value {} exceeded relaxed value {relaxed}",
            constrained.value
        );
    }
}

fn brute_force_relaxed(inst: &Instance, budget: u32) -> f64 {
    use power_scheduling::baselines::value_of_awake_set;
    let t = inst.horizon;
    let mut best = 0.0f64;
    // enumerate awake masks with at most `budget` runs (idling allowed)
    for mask in 0u32..(1 << t) {
        let mut runs = 0;
        let mut prev = false;
        for s in 0..t {
            let cur = mask >> s & 1 == 1;
            if cur && !prev {
                runs += 1;
            }
            prev = cur;
        }
        if runs > budget {
            continue;
        }
        let awake: Vec<u32> = (0..t).filter(|&s| mask >> s & 1 == 1).collect();
        best = best.max(value_of_awake_set(inst, &awake));
    }
    best
}

#[test]
fn gap_budget_prize_collecting_tradeoff_curve_is_concave_ish() {
    // sanity on the value-vs-budget curve: non-decreasing with diminishing
    // increments on a structured instance (three value clusters)
    let inst = Instance::new(
        1,
        12,
        vec![
            Job::window(8.0, 0, 0, 2),
            Job::window(8.0, 0, 0, 2),
            Job::window(4.0, 0, 5, 7),
            Job::window(4.0, 0, 5, 7),
            Job::window(1.0, 0, 10, 12),
            Job::window(1.0, 0, 10, 12),
        ],
    );
    let values: Vec<f64> = (1..=4)
        .map(|g| max_value_with_budget(&inst, g).value)
        .collect();
    assert_eq!(values[0], 16.0); // best single cluster
    assert_eq!(values[1], 24.0); // two best clusters
    assert_eq!(values[2], 26.0); // all three
    assert_eq!(values[3], 26.0); // saturated
    let inc1 = values[1] - values[0];
    let inc2 = values[2] - values[1];
    assert!(inc1 >= inc2, "increments should diminish");
}
