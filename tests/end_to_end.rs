//! Cross-crate integration: workload generation → scheduling algorithms →
//! validation → comparison against the exact solver and baselines.

use power_scheduling::baselines::{always_on_cost, exact_schedule_all};
use power_scheduling::prelude::*;
use power_scheduling::scheduling::model::validate_schedule;
use power_scheduling::workloads::planted::PlantedCostModel;
use power_scheduling::workloads::{planted_instance, PlantedConfig};
use rand::SeedableRng;

fn default_cfg() -> PlantedConfig {
    PlantedConfig {
        num_processors: 2,
        horizon: 12,
        target_jobs: 8,
        decoy_prob: 0.3,
        max_value: 1,
        cost_model: PlantedCostModel::Affine { restart: 3.0 },
        policy: CandidatePolicy::All,
    }
}

#[test]
fn planted_pipeline_schedule_validate_bound() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    for _ in 0..10 {
        let p = planted_instance(&default_cfg(), &mut rng);
        let s = schedule_all(&p.instance, &p.candidates, &SolveOptions::default()).unwrap();
        assert_eq!(s.scheduled_count, p.instance.num_jobs());
        assert!(validate_schedule(&p.instance, &s).is_empty());
        let n = p.instance.num_jobs() as f64;
        assert!(s.total_cost <= 2.0 * (n + 1.0).log2().ceil() * p.planted_cost + 1e-9);
    }
}

#[test]
fn greedy_vs_exact_on_small_instances() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(202);
    let mut measured = Vec::new();
    for _ in 0..6 {
        let cfg = PlantedConfig {
            target_jobs: 5,
            horizon: 8,
            num_processors: 1,
            ..default_cfg()
        };
        let p = planted_instance(&cfg, &mut rng);
        let greedy = schedule_all(&p.instance, &p.candidates, &SolveOptions::default()).unwrap();
        let exact = exact_schedule_all(&p.instance, &p.candidates, 8_000_000)
            .expect("small instance solvable exactly");
        assert!(greedy.total_cost >= exact.cost - 1e-9);
        let n = p.instance.num_jobs() as f64;
        let ratio = greedy.total_cost / exact.cost;
        assert!(ratio <= 2.0 * (n + 1.0).log2().ceil() + 1e-9);
        measured.push(ratio);
    }
    // sanity: the greedy is usually near-optimal, never pathological
    let avg: f64 = measured.iter().sum::<f64>() / measured.len() as f64;
    assert!(avg < 2.0, "average ratio suspiciously high: {avg}");
}

#[test]
fn greedy_beats_always_on_when_jobs_are_sparse() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let cfg = PlantedConfig {
        horizon: 32,
        target_jobs: 4,
        ..default_cfg()
    };
    let p = planted_instance(&cfg, &mut rng);
    let s = schedule_all(&p.instance, &p.candidates, &SolveOptions::default()).unwrap();
    let naive = always_on_cost(&p.instance, p.cost.as_ref()).unwrap();
    assert!(
        s.total_cost < naive,
        "sparse jobs: greedy {} should beat always-on {naive}",
        s.total_cost
    );
}

#[test]
fn prize_collecting_consistent_with_schedule_all_at_full_value() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    let p = planted_instance(&default_cfg(), &mut rng);
    let full = schedule_all(&p.instance, &p.candidates, &SolveOptions::default()).unwrap();
    let z = p.instance.total_value();
    let pc =
        prize_collecting_exact(&p.instance, &p.candidates, z, &SolveOptions::default()).unwrap();
    assert_eq!(pc.scheduled_count, p.instance.num_jobs());
    // prize-collecting at Z = total uses the same machinery; costs should be
    // identical (unit values make the weighted oracle match cardinality)
    assert!((pc.total_cost - full.total_cost).abs() < 1e-9);
}

#[test]
fn convex_cost_model_prefers_short_intervals() {
    // Two far-apart jobs under a strongly convex cost: two short awake
    // intervals must beat one long one (the paper's fan example).
    let inst = Instance::new(
        1,
        10,
        vec![
            Job::unit(vec![SlotRef::new(0, 0)]),
            Job::unit(vec![SlotRef::new(0, 9)]),
        ],
    );
    let cost = ConvexCost::new(0.5, 1.0, 1.0); // quad dominates long intervals
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s.awake.len(), 2, "convex cost should split the awake time");
    assert!(validate_schedule(&inst, &s).is_empty());
}

#[test]
fn unavailability_reroutes_jobs() {
    // slot (0,1) blocked: the job allowed at t∈{1,4} must land at t=4
    let inst = Instance::new(
        1,
        6,
        vec![Job::unit(vec![SlotRef::new(0, 1), SlotRef::new(0, 4)])],
    );
    let cost = UnavailableSlots::new(AffineCost::new(1.0, 1.0), 1, &[(0, 1)]);
    let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
    let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
    assert_eq!(s.assignments[0], Some(SlotRef::new(0, 4)));
}

use power_scheduling::scheduling::cost::UnavailableSlots;
