//! End-to-end tests of `power-sched serve`: a real server process on an
//! ephemeral port, driven over TCP — pipelined solve requests, a malformed
//! line, `ping`, and a graceful `shutdown` that must end the process with
//! exit code 0.
//!
//! The first test deliberately keeps a hand-rolled JSONL client: it is the
//! compatibility proof that v1/v2 line-protocol clients keep working
//! against a v3 server, byte for byte. Everything else goes through
//! [`EngineClient`], the shared client the CLI itself uses.

use power_scheduling::engine::{
    EngineClient, ErrorKind, SolveRequest, SolveResponse, Transport, WireFormat, PROTOCOL_VERSION,
};
use power_scheduling::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct ServerGuard {
    child: Child,
    addr: String,
}

impl ServerGuard {
    fn spawn(workers: u32) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_power-sched"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                &workers.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn power-sched serve");
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("read listen banner");
        let addr = first_line
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner ends with the address")
            .to_string();
        assert!(
            first_line.contains("listening on"),
            "unexpected banner: {first_line}"
        );
        Self { child, addr }
    }

    /// Waits (bounded) for the server to exit and returns its status.
    fn wait_for_exit(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "server did not shut down within 30s"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill(); // no-op when already exited cleanly
        let _ = self.child.wait();
    }
}

fn request(id: u64, time: u32) -> SolveRequest {
    let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, time % 4)])]);
    SolveRequest::builder(id, inst).affine(3.0, 1.0).build()
}

#[test]
fn pipelined_requests_ping_and_graceful_shutdown_over_raw_tcp() {
    let mut server = ServerGuard::spawn(2);
    let stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Pipeline everything before reading anything: 10 solves, one malformed
    // line, a ping, then shutdown.
    let mut batch = String::new();
    for i in 0..10u64 {
        batch.push_str(&serde_json::to_string(&request(i, i as u32)).unwrap());
        batch.push('\n');
    }
    batch.push_str("{\"oops\":\n");
    batch.push_str(&format!(
        "{{\"version\":{PROTOCOL_VERSION},\"control\":\"ping\"}}\n"
    ));
    batch.push_str(&format!(
        "{{\"version\":{PROTOCOL_VERSION},\"control\":\"shutdown\"}}\n"
    ));
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut responses = Vec::new();
    for _ in 0..13 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "server closed early");
        responses.push(serde_json::from_str::<SolveResponse>(line.trim()).unwrap());
    }

    for (i, resp) in responses[..10].iter().enumerate() {
        assert!(resp.ok, "solve {i} failed: {:?}", resp.error);
        assert_eq!(resp.id, i as u64, "per-connection responses stay in order");
        assert!(resp.schedule.is_some());
    }
    assert_eq!(
        responses[10]
            .error
            .as_ref()
            .expect("malformed line fails")
            .kind,
        ErrorKind::Parse
    );
    assert!(responses[11].ok, "ping must be acknowledged");
    assert!(responses[12].ok, "shutdown must be acknowledged");

    let status = server.wait_for_exit();
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );
}

#[test]
fn metrics_verb_returns_an_obs_snapshot_over_binary_frames() {
    let mut server = ServerGuard::spawn(2);
    let mut client =
        EngineClient::connect(&*server.addr, Transport::default()).expect("connect framed binary");
    assert_eq!(client.transport(), Transport::Framed(WireFormat::Binary));

    // A few solves so the counters are nonzero; workers bump their metrics
    // *before* resolving each ticket, so once the responses are read the
    // snapshot the verb takes is deterministic.
    for i in 0..4u64 {
        client.send(&request(i, i as u32)).unwrap();
    }
    client.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..4 {
        responses.push(client.recv().expect("read solve response").unwrap());
    }

    client.send_control("metrics").unwrap();
    client.send_control("shutdown").unwrap();
    client.flush().unwrap();
    for _ in 0..2 {
        responses.push(client.recv().expect("read control response").unwrap());
    }
    assert!(responses.iter().all(|r| r.ok));

    let obs = responses[4]
        .obs
        .as_ref()
        .expect("metrics ack carries a snapshot");
    assert_eq!(obs.schema, power_scheduling::obs::SCHEMA);
    let requests = obs
        .counters
        .iter()
        .find(|c| c.name == "engine.requests")
        .expect("engine.requests counter");
    assert_eq!(requests.value, 4, "all solves counted before the verb");
    let latency = obs
        .histograms
        .iter()
        .find(|h| h.name == "engine.request.latency_ns")
        .expect("request latency histogram");
    assert_eq!(latency.count, 4);
    assert!(latency.p99 >= latency.p50 && latency.p50 > 0);
    // Per-worker solver metrics are merged in with a worker prefix.
    assert!(
        obs.counters
            .iter()
            .any(|c| c.name.starts_with("worker") && c.name.ends_with("engine.cache.misses")),
        "expected prefixed per-worker rows, got: {:?}",
        obs.counters.iter().map(|c| &c.name).collect::<Vec<_>>()
    );

    let status = server.wait_for_exit();
    assert!(status.success());
}

/// The compatibility matrix the protocol docs promise: v1 and v2 JSONL
/// clients, a v3 JSON-framed client, and a v3 binary client all get served
/// by one v3 server — on the same port, negotiated per connection.
#[test]
fn protocol_version_matrix_v1_v2_v3_clients_against_one_server() {
    let mut server = ServerGuard::spawn(2);

    // v1 and v2 clients: raw JSONL with an explicit old version stamp.
    for version in [1u32, 2] {
        let stream = TcpStream::connect(&server.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut req = request(u64::from(version), 0);
        req.version = version;
        writeln!(writer, "{}", serde_json::to_string(&req).unwrap()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("v1/v2 response line");
        let resp: SolveResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(resp.ok, "v{version} client rejected: {:?}", resp.error);
        assert_eq!(resp.id, u64::from(version));
        assert_eq!(
            resp.version, PROTOCOL_VERSION,
            "responses are stamped with the server's version"
        );
    }

    // v3 clients: framed JSON and framed binary, with explicit negotiation.
    for transport in [
        Transport::Framed(WireFormat::Json),
        Transport::Framed(WireFormat::Binary),
    ] {
        let mut client = EngineClient::connect(&*server.addr, transport).expect("connect framed");
        let hello = client.hello().expect("hello negotiation");
        assert_eq!(hello.protocol, PROTOCOL_VERSION);
        assert_eq!(hello.min_protocol, 1, "v1 clients stay supported");
        client.send(&request(7, 1)).unwrap();
        client.flush().unwrap();
        let resp = client.recv().unwrap().expect("framed response");
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.id, 7);
    }

    // A version from the future is refused with a structured error.
    {
        let stream = TcpStream::connect(&server.addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut req = request(99, 0);
        req.version = PROTOCOL_VERSION + 1;
        writeln!(writer, "{}", serde_json::to_string(&req).unwrap()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: SolveResponse = serde_json::from_str(line.trim()).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().kind, ErrorKind::UnsupportedVersion);
    }

    let mut shutter = EngineClient::connect(&*server.addr, Transport::default()).unwrap();
    shutter.send_control("shutdown").unwrap();
    shutter.flush().unwrap();
    assert!(shutter.recv().unwrap().expect("shutdown ack").ok);
    assert!(server.wait_for_exit().success());
}

#[test]
fn shutdown_is_not_blocked_by_an_idle_connection() {
    // Regression: serve() used to join every connection thread, so a client
    // that connected and then went silent kept the server alive forever
    // after another client's shutdown request.
    let mut server = ServerGuard::spawn(1);
    let idle = TcpStream::connect(&server.addr).expect("idle client connects");

    let shutter = TcpStream::connect(&server.addr).expect("shutter connects");
    let mut writer = shutter.try_clone().unwrap();
    writeln!(
        writer,
        "{{\"version\":{PROTOCOL_VERSION},\"control\":\"shutdown\"}}"
    )
    .unwrap();
    writer.flush().unwrap();
    let mut ack = String::new();
    BufReader::new(shutter).read_line(&mut ack).unwrap();
    assert!(
        serde_json::from_str::<SolveResponse>(ack.trim())
            .unwrap()
            .ok
    );

    let status = server.wait_for_exit();
    assert!(status.success(), "idle connection must not block shutdown");
    drop(idle);
}

#[test]
fn empty_connect_batch_returns_immediately_instead_of_hanging() {
    // Regression: with zero non-blank request lines and no --shutdown the
    // client used to park in its response loop forever.
    let mut server = ServerGuard::spawn(1);
    let dir = std::env::temp_dir().join(format!("power-sched-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "\n  \n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_power-sched"))
        .args(["batch", empty.to_str().unwrap(), "--connect", &server.addr])
        .output()
        .expect("spawn batch --connect on empty input");
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "no requests, no responses");

    // the server is still alive and serviceable afterwards
    let out = Command::new(env!("CARGO_BIN_EXE_power-sched"))
        .args(["batch", "-", "--connect", &server.addr, "--shutdown"])
        .stdin(Stdio::null())
        .output()
        .expect("shutdown client");
    assert!(out.status.success());
    let status = server.wait_for_exit();
    assert!(status.success());
}

#[test]
fn batch_connect_drives_a_server_and_shuts_it_down() {
    let mut server = ServerGuard::spawn(2);
    let dir = std::env::temp_dir().join(format!("power-sched-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reqs = dir.join("reqs.jsonl");
    let body: String = (0..10u64)
        .map(|i| serde_json::to_string(&request(i, i as u32)).unwrap() + "\n")
        .collect();
    std::fs::write(&reqs, body).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_power-sched"))
        .args([
            "batch",
            reqs.to_str().unwrap(),
            "--connect",
            &server.addr,
            "--shutdown",
        ])
        .output()
        .expect("spawn batch --connect");
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let responses: Vec<SolveResponse> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 11, "10 solves + shutdown ack");
    assert!(responses.iter().all(|r| r.ok));
    assert_eq!(
        responses[..10].iter().map(|r| r.id).collect::<Vec<_>>(),
        (0..10).collect::<Vec<_>>()
    );

    let status = server.wait_for_exit();
    assert!(
        status.success(),
        "graceful shutdown must exit 0: {status:?}"
    );
}

/// Speed scaling over the wire: a v3 request carrying `freq_ladder` and
/// work requirements is served through the real serve loop and answers
/// with per-interval frequency assignments (`freq_levels` parallel to
/// `schedule.awake`). A legacy-shaped request on the same connection is
/// unaffected — the DVFS fields are additive.
#[test]
fn dvfs_request_over_serve_loop_returns_frequency_assignments() {
    let mut server = ServerGuard::spawn(2);
    let mut client =
        EngineClient::connect(&*server.addr, Transport::default()).expect("connect framed binary");

    // The documented greedy-vs-exact anchor instance: wake 1, P(f) = f^2
    // over rungs {1, 2}; greedy pays 9 (see README "Speed scaling").
    let inst = Instance {
        num_processors: 1,
        horizon: 3,
        jobs: vec![
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 0)],
                work: Some(2),
            },
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 1)],
                work: None,
            },
            Job {
                value: 1.0,
                allowed: vec![SlotRef::new(0, 2)],
                work: None,
            },
        ],
    };
    let ladder = FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]);
    let dvfs_req = SolveRequest::builder(1, inst)
        .affine(1.0, 1.0)
        .freq_ladder(ladder)
        .build();
    client.send(&dvfs_req).unwrap();
    client.send(&request(2, 0)).unwrap();
    client.send_control("shutdown").unwrap();
    client.flush().unwrap();

    let dvfs_resp = client.recv().unwrap().expect("dvfs response");
    assert!(dvfs_resp.ok, "{:?}", dvfs_resp.error);
    let schedule = dvfs_resp.schedule.expect("dvfs schedule");
    assert_eq!(schedule.scheduled_count, 3);
    assert_eq!(schedule.total_cost, 9.0, "greedy pays the eager-grab price");
    let levels = dvfs_resp
        .freq_levels
        .expect("DVFS responses carry frequency assignments");
    assert_eq!(
        levels.len(),
        schedule.awake.len(),
        "one level per awake interval"
    );
    assert!(levels.iter().all(|&l| l < 2), "levels index the ladder");

    // Legacy request on the same connection: served, no freq_levels.
    let classic = client.recv().unwrap().expect("classic response");
    assert!(classic.ok, "{:?}", classic.error);
    assert!(classic.freq_levels.is_none());
    let ack = client.recv().unwrap().expect("shutdown ack");
    assert!(ack.ok);

    let status = server.wait_for_exit();
    assert!(status.success());
}
